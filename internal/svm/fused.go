package svm

import (
	"fmt"
	"math"
	"strings"

	"webtxprofile/internal/sparse"
)

// How each model of a FusedIndex is scored (see NewFusedIndex).
const (
	fusedLinear   uint8 = iota // prepared linear model: weight-vector postings
	fusedSV                    // prepared non-linear model: support-vector postings
	fusedFallback              // unprepared model: per-model generic decision
)

// screenSlack is the relative floating-point safety margin of the decision
// screen: a model is only screened out when its upper bound clears the
// accept tolerance by this fraction of the bound's magnitude, so the few
// ulps of rounding between the bound computation and the exact kernel loop
// can never flip an accept into a screened reject.
const screenSlack = 1e-9

// critSlack deflates the precomputed screening thresholds (sCrit, d2Crit)
// by a hair, so the handful of roundings in the threshold algebra itself —
// a division, a log — can never over-screen. It is three orders of
// magnitude above those roundings and three below screenSlack, so the
// screen loses no measurable power.
const critSlack = 1e-12

// KernelMode selects which scoring kernels a FusedIndex runs.
type KernelMode uint8

const (
	// KernelsAuto resolves to the lane-blocked kernels (block8/block16):
	// straight-line unrolled multiply-add over full lanes. This is the
	// default and is portable Go — the lane shapes exist so the work maps
	// 1:1 onto packed FMA registers (and a future build-tagged asm kernel
	// can consume the same layout directly).
	KernelsAuto KernelMode = iota
	// KernelsPortable runs simple per-posting reference loops over the
	// same blocked layout. Float64 results are bit-identical to the lane
	// kernels (per-accumulator term order is the same); it exists as the
	// plain-code baseline for differential testing, benchmarking the lane
	// shapes' win, and as an escape hatch.
	KernelsPortable
)

// FusedConfig selects how a FusedIndex stores and accumulates postings.
type FusedConfig struct {
	// Float32 stores the postings values in float32 and runs the
	// per-window dot-product accumulators in float32 too, roughly halving
	// the index and scratch memory and the accumulation bandwidth. The
	// scalar kernel loop still runs in float64 on the converted dots.
	// Decisions then match the exact float64 path only within
	// Float32DecisionBound (instead of bit-identically), so accepts may
	// differ for windows within that bound of a model's boundary. The
	// zero value — exact float64 — is the default everywhere.
	Float32 bool

	// Kernels picks the scoring kernels (lane-blocked vs portable); both
	// run over the same blocked postings layout and produce bit-identical
	// accumulators. The zero value (KernelsAuto) is the lane kernels.
	Kernels KernelMode
}

// Lane widths of the blocked postings layout: one lane of values is one
// 64-byte cache line (8×float64 or 16×float32), and every (block, column)
// postings group is zero-padded to a whole number of lanes so the
// accumulate kernels are pure straight-line lane loops with no remainder
// handling.
const (
	laneWidth64 = 8
	laneWidth32 = 16
)

// maxBlockGroups bounds the dense per-(block, column) offset table of a
// postings family. When accumulators × columns would exceed it, the block
// span doubles until it fits — huge populations degrade gracefully to
// larger blocks instead of blowing up the table.
const maxBlockGroups = 4 << 20

// minGroupPostings is the target average (block, column) group size.
// Blocking trades the column-contiguous layout's long sequential postings
// runs for write locality, and the trade only pays if the runs stay long
// enough for the hardware prefetcher — a few KiB, not a few cache lines.
// The block span grows until groups average at least this many postings
// (measured, not guessed: the builder knows the family's density), so a
// dense population gets small L2-resident accumulator spans with ~3 KiB
// runs, and a sparse one degrades smoothly toward the unblocked layout
// where scattered writes are rare anyway.
const minGroupPostings = 512

// blockedPostings is one postings family of a FusedIndex (linear weights
// or support vectors) in the feature-blocked, lane-padded layout.
//
// Accumulator ordinals are split into fixed power-of-two blocks
// (block(g) = g >> shift, sized so a block's accumulator span stays
// L1-resident), and postings are grouped by (block, column): group
// (b, c) occupies ord/val[starts[b*ncols+c] : starts[b*ncols+c+1]],
// zero-padded to full lanes with postings that target the spare ordinal
// (val 0, so they accumulate exact zeros into a cell nobody reads).
// Within a group, postings keep ascending ordinal order.
//
// The accumulate kernels walk blocks in the outer loop and the window's
// columns in the inner loop, so all scattered writes of a block land in
// one small accumulator span. Bit-identity with the unblocked column-major
// walk holds because blocks partition ordinals exactly: every term of a
// given accumulator lives in exactly one block and is therefore still
// received in window-column order, and per (column, accumulator) there is
// at most one posting — so each accumulator's term order is unchanged.
type blockedPostings struct {
	ncols   int32   // column span (max posting column + 1)
	nblocks int32   // ordinal blocks
	shift   uint    // accumulator ordinal → block index
	starts  []int32 // len nblocks*ncols+1: lane-padded group offsets
	ord     []int32 // accumulator ordinal per posting (spare for pads)
	val     []float64
	val32   []float32
	real    int // postings before padding
	pad     int // zero-filled lane-padding postings
}

// pickBlockShift returns the ordinal→block shift: starting from a 16 KiB
// accumulator span (2048 float64 / 4096 float32), the block doubles until
// the group table fits maxBlockGroups and the family's npostings average
// at least minGroupPostings per group.
func pickBlockShift(nacc, ncols, npostings, elemSize int) uint {
	shift := uint(11)
	if elemSize == 4 {
		shift = 12
	}
	for {
		nblocks := (nacc + (1 << shift) - 1) >> shift
		if nblocks <= 1 {
			return shift
		}
		if nblocks*ncols <= maxBlockGroups && npostings >= minGroupPostings*nblocks*ncols {
			return shift
		}
		shift++
	}
}

// buildBlocked converts raw column-sorted postings (column c holds
// rawOrd/rawVal[rawStarts[c]:rawStarts[c+1]], ordinals ascending within a
// column) into the blocked, lane-padded layout over nacc accumulators
// (the last one being the spare pad target).
func buildBlocked(rawStarts, rawOrd []int32, rawVal []float64, nacc int, f32 bool) blockedPostings {
	ncols := len(rawStarts) - 1
	if ncols <= 0 || len(rawOrd) == 0 {
		return blockedPostings{}
	}
	lane, elem := laneWidth64, 8
	if f32 {
		lane, elem = laneWidth32, 4
	}
	shift := pickBlockShift(nacc, ncols, len(rawOrd), elem)
	nblocks := (nacc + (1 << shift) - 1) >> shift
	ngroups := nblocks * ncols

	starts := make([]int32, ngroups+1)
	for c := 0; c < ncols; c++ {
		for p := rawStarts[c]; p < rawStarts[c+1]; p++ {
			b := int(rawOrd[p]) >> shift
			starts[b*ncols+c+1]++
		}
	}
	pad := 0
	for g := 0; g < ngroups; g++ {
		cnt := starts[g+1]
		if rem := cnt % int32(lane); rem != 0 {
			pad += lane - int(rem)
			cnt += int32(lane) - rem
		}
		starts[g+1] = starts[g] + cnt
	}

	pb := blockedPostings{
		ncols:   int32(ncols),
		nblocks: int32(nblocks),
		shift:   shift,
		starts:  starts,
		ord:     make([]int32, starts[ngroups]),
		real:    len(rawOrd),
		pad:     pad,
	}
	if f32 {
		pb.val32 = make([]float32, starts[ngroups])
	} else {
		pb.val = make([]float64, starts[ngroups])
	}
	fill := make([]int32, ngroups)
	copy(fill, starts[:ngroups])
	for c := 0; c < ncols; c++ {
		for p := rawStarts[c]; p < rawStarts[c+1]; p++ {
			b := int(rawOrd[p]) >> shift
			g := b*ncols + c
			pos := fill[g]
			pb.ord[pos] = rawOrd[p]
			if f32 {
				pb.val32[pos] = float32(rawVal[p])
			} else {
				pb.val[pos] = rawVal[p]
			}
			fill[g] = pos + 1
		}
	}
	spare := int32(nacc - 1)
	for g := 0; g < ngroups; g++ {
		for pos := fill[g]; pos < starts[g+1]; pos++ {
			pb.ord[pos] = spare // values are already zero
		}
	}
	return pb
}

// bytes returns the resident size of the family's slices.
func (pb *blockedPostings) bytes() int64 {
	return int64(len(pb.starts))*4 + int64(len(pb.ord))*4 +
		int64(len(pb.val))*8 + int64(len(pb.val32))*4
}

// FusedIndex merges every model's decision structure into one population-
// wide inverted index, so a single pass over a window's non-zeros
// accumulates the inputs of *all* models' decision functions at once —
// instead of re-walking the window once per model as the per-model
// svIndex/weight-vector path does. Two postings families share the pass:
//
//   - Linear postings, feature → (model, weight): each prepared linear
//     model contributes the non-zeros of its dense weight vector
//     w = Σᵢ αᵢxᵢ, and the pass accumulates w·x per model directly.
//   - Support-vector postings, feature → (global SV ordinal, value): each
//     prepared non-linear model's support vectors occupy a contiguous
//     range of global ordinals (svBase), and the pass accumulates xᵢ·x
//     per support vector.
//
// Both families use the feature-blocked, lane-padded layout of
// blockedPostings, and the float64 accumulators stay bit-identical to the
// unblocked per-model svIndex.dotsInto pass: every accumulator still
// receives its terms in window-column order (see blockedPostings). Models
// that are not prepared (hand-assembled without Validate) take the
// per-model fallback path.
//
// The index also caches, per model, the decision-screen inputs of
// Scorer.AcceptMask: Σαᵢ, the min/max support-vector norms (every αᵢ > 0
// by Validate, which makes Σαᵢ·max k an admissible bound on the kernel
// sum — see screenReject), and for RBF models the precomputed screen
// thresholds sCrit/d2Crit that make the first screening levels entirely
// transcendental-free.
//
// A FusedIndex is immutable after build and safe for concurrent readers:
// Monitor shards share one index and attach per-shard Scorer scratch.
type FusedIndex struct {
	models   []*Model
	cfg      FusedConfig
	portable bool
	vector   bool // KernelsAuto resolved to the AVX-512 packed kernels
	kind     []uint8

	lin blockedPostings // linear-weight postings
	sv  blockedPostings // support-vector postings

	// Column → owning models with at least one SV posting in that column
	// (deduped, ascending): ownIDs[ownStarts[c]:ownStarts[c+1]]. This is
	// the touch-marking pass, decoupled from accumulation so the lane
	// kernels stay pure multiply-add.
	ownStarts []int32
	ownIDs    []int32

	// Per-model global SV ordinal ranges: model mi owns [svBase[mi],
	// svBase[mi+1]) (empty for linear/fallback models).
	svBase []int32
	// Per global ordinal: dual coefficient, ‖sv‖², and — for RBF models —
	// γ·‖sv‖²/h, the precomputed table-index contribution of the support
	// vector to the screening bound (see fusedRBFSumBound64: folding γ and
	// the table scale into the operand array at build time leaves one fused
	// multiply-add per support vector in the bound's inner loop).
	coef     []float64
	svNorms  []float64
	snGammaH []float64

	// Per-model screening caches: Σαᵢ, min/max ‖svᵢ‖ and min ‖svᵢ‖²
	// (zero for linear and fallback models, which are never screened).
	sumAlpha []float64
	minNorm  []float64
	maxNorm  []float64
	snMin    []float64

	// Per-model precomputed RBF screen thresholds (see rbfScreenCrit):
	// a kernel-sum upper bound below sCrit, or a squared-distance lower
	// bound above d2Crit, proves rejection. Zero/±Inf for non-RBF models.
	sCrit  []float64
	d2Crit []float64
	// gammaH[mi] is γ/h for RBF models and 0 otherwise — both the screen's
	// RBF discriminant and its table-index scale, kept dense so the hot
	// screening path never dereferences the Model itself (ten thousand
	// pointer chases per window would out-cost the bounds they gate).
	gammaH []float64

	footprint IndexFootprint
}

// IndexFootprint is the memory accounting of a built FusedIndex: what the
// blocked layout costs and how much of it is lane padding.
type IndexFootprint struct {
	Models       int
	SVs          int
	Postings     int   // real postings stored (linear weights + SV entries)
	LanePadWaste int   // zero-filled pad slots added to fill out lanes
	IndexBytes   int64 // resident bytes: postings, offsets, per-model caches
}

// String renders the footprint for startup logs.
func (f IndexFootprint) String() string {
	padPct := 0.0
	if n := f.Postings + f.LanePadWaste; n > 0 {
		padPct = 100 * float64(f.LanePadWaste) / float64(n)
	}
	return fmt.Sprintf("models=%d svs=%d postings=%d pad=%d (%.1f%%) bytes=%d",
		f.Models, f.SVs, f.Postings, f.LanePadWaste, padPct, f.IndexBytes)
}

// Footprint returns the index's memory accounting.
func (ix *FusedIndex) Footprint() IndexFootprint { return ix.footprint }

// Engine describes the resolved scoring kernels, e.g.
// "block8/float64+avx512 (cpu: avx2,avx512f,fma,sse2)" or
// "portable/float32".
func (ix *FusedIndex) Engine() string {
	var b strings.Builder
	switch {
	case ix.portable:
		b.WriteString("portable")
	case ix.cfg.Float32:
		b.WriteString("block16")
	default:
		b.WriteString("block8")
	}
	if ix.cfg.Float32 {
		b.WriteString("/float32")
	} else {
		b.WriteString("/float64")
	}
	if ix.vector {
		b.WriteString("+avx512")
	}
	if !ix.portable && len(cpuFeatureList) > 0 {
		b.WriteString(" (cpu: ")
		b.WriteString(strings.Join(cpuFeatureList, ","))
		b.WriteString(")")
	}
	return b.String()
}

// cpuFeatureList holds the detected SIMD capabilities of this CPU
// (detectCPUFeatures; empty off amd64). It is both observability and the
// dispatch input: KernelsAuto resolves to the AVX-512 packed kernels when
// "avx512f" is present, and to the portable-Go lane kernels otherwise.
var cpuFeatureList = detectCPUFeatures()

// NewFusedIndex builds the fused population index over models. The models
// are shared, not copied; prepared models (Train, UnmarshalJSON, Validate)
// take the fused path, unprepared ones are recorded for per-model fallback.
func NewFusedIndex(models []*Model, cfg FusedConfig) *FusedIndex {
	n := len(models)
	ix := &FusedIndex{
		models:   models,
		cfg:      cfg,
		portable: cfg.Kernels == KernelsPortable,
		vector:   cfg.Kernels == KernelsAuto && !disablePackedKernels && asmKernelsSupported(),
		kind:     make([]uint8, n),
		svBase:   make([]int32, n+1),
		sumAlpha: make([]float64, n),
		minNorm:  make([]float64, n),
		maxNorm:  make([]float64, n),
		snMin:    make([]float64, n),
		sCrit:    make([]float64, n),
		d2Crit:   make([]float64, n),
		gammaH:   make([]float64, n),
	}

	// Classify each model and measure both postings families.
	maxLinCol, maxSVCol := -1, -1
	totalLin, totalSV, numSVs := 0, 0, 0
	for mi, m := range models {
		switch {
		case m == nil:
			ix.kind[mi] = fusedFallback // fails at decision time, like the per-model path
		case m.w != nil && m.Kernel.Kind == KernelLinear:
			ix.kind[mi] = fusedLinear
			for c, wv := range m.w {
				if wv != 0 {
					totalLin++
					if c > maxLinCol {
						maxLinCol = c
					}
				}
			}
		case m.idx != nil:
			ix.kind[mi] = fusedSV
			numSVs += len(m.SVs)
			for _, sv := range m.SVs {
				totalSV += len(sv.Idx)
				if n := len(sv.Idx); n > 0 && int(sv.Idx[n-1]) > maxSVCol {
					maxSVCol = int(sv.Idx[n-1])
				}
			}
		default:
			ix.kind[mi] = fusedFallback
		}
		ix.svBase[mi+1] = int32(numSVs)
	}

	// Linear postings: counting sort by column, models in index order, so
	// postings within a column are sorted by model.
	linStarts := make([]int32, maxLinCol+2)
	linOrd := make([]int32, totalLin)
	linVal := make([]float64, totalLin)
	for mi, m := range models {
		if ix.kind[mi] != fusedLinear {
			continue
		}
		for c, wv := range m.w {
			if wv != 0 {
				linStarts[c+1]++
			}
		}
	}
	for c := 1; c < len(linStarts); c++ {
		linStarts[c] += linStarts[c-1]
	}
	linFill := make([]int32, maxLinCol+1)
	copy(linFill, linStarts[:maxLinCol+1])
	for mi, m := range models {
		if ix.kind[mi] != fusedLinear {
			continue
		}
		for c, wv := range m.w {
			if wv == 0 {
				continue
			}
			p := linFill[c]
			linOrd[p] = int32(mi)
			linVal[p] = wv
			linFill[c] = p + 1
		}
	}

	// SV postings: same counting sort over global ordinals, plus the
	// per-ordinal caches (owner, coefficient, norm) and the per-model
	// screening bounds.
	svStarts := make([]int32, maxSVCol+2)
	svOrd := make([]int32, totalSV)
	svVal := make([]float64, totalSV)
	svOwner := make([]int32, numSVs)
	ix.coef = make([]float64, numSVs)
	ix.svNorms = make([]float64, numSVs)
	ix.snGammaH = make([]float64, numSVs)
	for mi, m := range models {
		if ix.kind[mi] != fusedSV {
			continue
		}
		for _, sv := range m.SVs {
			for _, c := range sv.Idx {
				svStarts[c+1]++
			}
		}
	}
	for c := 1; c < len(svStarts); c++ {
		svStarts[c] += svStarts[c-1]
	}
	svFill := make([]int32, maxSVCol+1)
	copy(svFill, svStarts[:maxSVCol+1])
	for mi, m := range models {
		if ix.kind[mi] != fusedSV {
			continue
		}
		base := ix.svBase[mi]
		sumA, minN, maxN := 0.0, math.Inf(1), 0.0
		for si, sv := range m.SVs {
			g := base + int32(si)
			svOwner[g] = int32(mi)
			ix.coef[g] = m.Coef[si]
			ix.svNorms[g] = m.svNorms[si]
			sumA += m.Coef[si]
			if m.svNorms[si] < minN {
				minN = m.svNorms[si]
			}
			if m.svNorms[si] > maxN {
				maxN = m.svNorms[si]
			}
			for k, c := range sv.Idx {
				p := svFill[c]
				svOrd[p] = g
				svVal[p] = sv.Val[k]
				svFill[c] = p + 1
			}
		}
		ix.sumAlpha[mi] = sumA
		ix.snMin[mi] = minN
		ix.minNorm[mi] = math.Sqrt(minN)
		ix.maxNorm[mi] = math.Sqrt(maxN)
		if m.Kernel.Kind == KernelRBF {
			ix.sCrit[mi], ix.d2Crit[mi] = rbfScreenCrit(m, sumA)
			gh := m.Kernel.Gamma * rbfExpInvH
			ix.gammaH[mi] = gh
			for si := range m.SVs {
				g := base + int32(si)
				ix.snGammaH[g] = gh * ix.svNorms[g]
			}
		}
	}

	// Column → owning models, deduped: within a column the raw postings
	// are in ascending global-ordinal order, so owners are non-decreasing
	// and dedup is a run-length pass.
	if maxSVCol >= 0 {
		ix.ownStarts = make([]int32, maxSVCol+2)
		var ids []int32
		for c := 0; c <= maxSVCol; c++ {
			last := int32(-1)
			for p := svStarts[c]; p < svStarts[c+1]; p++ {
				if w := svOwner[svOrd[p]]; w != last {
					ids = append(ids, w)
					last = w
				}
			}
			ix.ownStarts[c+1] = int32(len(ids))
		}
		ix.ownIDs = ids
	}

	// Convert both families to the blocked, lane-padded layout. The
	// accumulator counts include one spare slot (ordinal n / numSVs) that
	// the pad postings target.
	ix.lin = buildBlocked(linStarts, linOrd, linVal, n+1, cfg.Float32)
	ix.sv = buildBlocked(svStarts, svOrd, svVal, numSVs+1, cfg.Float32)

	ix.footprint = IndexFootprint{
		Models:       n,
		SVs:          numSVs,
		Postings:     ix.lin.real + ix.sv.real,
		LanePadWaste: ix.lin.pad + ix.sv.pad,
		IndexBytes: ix.lin.bytes() + ix.sv.bytes() +
			int64(len(ix.ownStarts))*4 + int64(len(ix.ownIDs))*4 +
			int64(len(ix.kind)) + int64(len(ix.svBase))*4 +
			int64(len(ix.coef)+len(ix.svNorms)+len(ix.snGammaH))*8 +
			int64(len(ix.sumAlpha)+len(ix.minNorm)+len(ix.maxNorm)+len(ix.snMin)+len(ix.sCrit)+len(ix.d2Crit)+len(ix.gammaH))*8,
	}
	recordIndexBuild(ix.footprint)
	return ix
}

// rbfScreenCrit precomputes the RBF decision screen's thresholds for one
// model, so the screening levels compare against constants instead of
// re-deriving the bound per window.
//
// sCrit inverts rejectWithSum: for RBF, any upper bound s on the kernel
// sum satisfies s ≥ 0 (k ∈ (0,1], αᵢ > 0) and evalSelf is the constant 1,
// so "ub < −(tol + screenSlack·(1+s))" is, algebraically, "s < sCrit"
// with sCrit = (ρ − tol − slack)/(1 + slack) for OC-SVM and
// (1 + SumAA − R² − tol − slack)/(2 + slack) for SVDD. d2Crit then inverts
// the true kernel bound Σα·exp(−γd²) < sCrit: whenever every squared
// distance provably exceeds d2Crit = ln(Σα/sCrit)/γ, the model cannot
// accept — without evaluating a single exp at scoring time.
//
// Admissibility under rounding: sCrit is deflated and d2Crit inflated by
// critSlack, three orders of magnitude beyond the ulp-level rounding of
// this algebra (and of math.Exp/math.Log), while the screenSlack margin
// baked into sCrit already dwarfs the exact loop's own rounding. A
// non-positive sCrit can never screen (bounds are ≥ 0), so d2Crit is +Inf.
func rbfScreenCrit(m *Model, sumA float64) (sCrit, d2Crit float64) {
	tol := m.acceptTol()
	switch m.Algo {
	case OCSVM:
		sCrit = (m.Rho - tol - screenSlack) / (1 + screenSlack)
	case SVDD:
		sCrit = (1 + m.SumAA - m.R2 - tol - screenSlack) / (2 + screenSlack)
	}
	if sCrit <= 0 {
		return sCrit, math.Inf(1)
	}
	sCrit *= 1 - critSlack
	d2Crit = math.Log(sumA/sCrit) / m.Kernel.Gamma
	d2Crit += critSlack * (1 + math.Abs(d2Crit))
	return sCrit, d2Crit
}

// NumModels returns the number of models fused into the index.
func (ix *FusedIndex) NumModels() int { return len(ix.models) }

// numSVs returns the total support-vector count across fused models.
func (ix *FusedIndex) numSVs() int { return int(ix.svBase[len(ix.models)]) }

// markOwners stamps every model owning at least one support-vector posting
// in one of x's columns with the scorer's epoch — the same touch condition
// the accumulate pass used to establish inline, decoupled so the lane
// kernels stay pure multiply-add. Columns carry deduped owner lists, so
// this visits ~postings/nnz-per-(model,column) entries, not every posting.
func (ix *FusedIndex) markOwners(x sparse.Vector, marks []uint64, epoch uint64) {
	lim := int32(len(ix.ownStarts)) - 1
	if lim <= 0 {
		return
	}
	for _, c := range x.Idx {
		if c >= lim {
			break // x.Idx is sorted: everything after is out of range too
		}
		for p := ix.ownStarts[c]; p < ix.ownStarts[c+1]; p++ {
			marks[ix.ownIDs[p]] = epoch
		}
	}
}

// fusedLinearDecision folds an accumulated weight dot product into the
// decision value, mirroring the linear branch of Model.decisionScratch.
func fusedLinearDecision(m *Model, wx, nx float64) float64 {
	switch m.Algo {
	case OCSVM:
		return wx - m.Rho
	case SVDD:
		return m.R2 - m.SumAA + 2*wx - nx
	default:
		panic("svm: Decision on invalid model")
	}
}

// fusedSVDecision evaluates model mi's exact decision value from the
// accumulated per-SV dot products — the same scalar kernel loop as
// Model.decisionIndexed, reading the model's contiguous ordinal range.
// For T = float64 the result is bit-identical to the per-model path.
func fusedSVDecision[T float32 | float64](ix *FusedIndex, mi int, dots []T, nx float64) float64 {
	m := ix.models[mi]
	lo, hi := ix.svBase[mi], ix.svBase[mi+1]
	sum := fusedKernelSum(m.Kernel, ix.coef[lo:hi], ix.svNorms[lo:hi], dots[lo:hi], nx)
	switch m.Algo {
	case OCSVM:
		return sum - m.Rho
	case SVDD:
		return m.R2 - m.SumAA + 2*sum - m.Kernel.evalSelf(nx)
	default:
		panic("svm: Decision on invalid model")
	}
}

// kernelMax bounds k(xᵢ,x) from above given that every support-vector dot
// product lies in [dlo, dhi] and (for RBF) every squared distance is at
// least d2lo. Admissibility per kernel: polynomial b^d is monotone in b
// for odd d and convex for even d (max at an interval endpoint either
// way); RBF exp(−γd²) is decreasing in d²; tanh is increasing.
func kernelMax(k Kernel, dlo, dhi, d2lo float64) float64 {
	switch k.Kind {
	case KernelPoly:
		hi := ipow(k.Gamma*dhi+k.Coef0, k.Degree)
		if k.Degree%2 == 0 {
			if lo := ipow(k.Gamma*dlo+k.Coef0, k.Degree); lo > hi {
				hi = lo
			}
		}
		return hi
	case KernelRBF:
		if d2lo < 0 {
			d2lo = 0
		}
		return math.Exp(-k.Gamma * d2lo)
	case KernelSigmoid:
		return math.Tanh(k.Gamma*dhi + k.Coef0)
	case KernelLinear:
		return dhi // linear models take the weight path; kept for completeness
	default:
		return math.Inf(1)
	}
}

// rejectWithSum reports whether a proven upper bound s on the kernel sum
// Σαᵢk(xᵢ,x), substituted into the decision function, falls below the
// accept tolerance by more than the floating-point safety margin. A
// false return says nothing; the exact loop decides.
func rejectWithSum(m *Model, s, nx, tol float64) bool {
	var ub float64
	switch m.Algo {
	case OCSVM:
		ub = s - m.Rho
	case SVDD:
		ub = m.R2 - m.SumAA + 2*s - m.Kernel.evalSelf(nx)
	default:
		return false
	}
	return ub < -(tol + screenSlack*(1+math.Abs(s)))
}

// screenReject reports whether the model provably cannot accept x: the
// decision value's upper bound — Σαᵢ·max k, admissible because Validate
// guarantees every αᵢ > 0 — rules the window out.
func screenReject(m *Model, sumA, dlo, dhi, d2lo, nx, tol float64) bool {
	return rejectWithSum(m, sumA*kernelMax(m.Kernel, dlo, dhi, d2lo), nx, tol)
}

// screenSV runs the layered decision screen for non-linear model mi.
//
// RBF models compare squared-distance lower bounds against the
// precomputed d2Crit, transcendental-free at every level:
//
//	Level 0 (untouched): every dot is an exact zero, so d² ≥ snMin + nx.
//	Level 1 (O(1)): ‖xᵢ−x‖ ≥ |‖xᵢ‖−‖x‖| via the cached norm extrema —
//	  no accumulated state read at all.
//	Level 2 (O(#SVs), division-free): the per-support-vector tabulated
//	  exp upper bound on the kernel sum (fusedRBFSumBound) against
//	  sCrit — this is what separates a model with one near-ish support
//	  vector from a model that genuinely accepts: an interval bound
//	  would charge every vector at the closest one's distance, while
//	  this sum charges each at its own.
//
// Polynomial and sigmoid models keep the generic interval-bound layers
// (their SVDD self-term depends on nx, so no threshold precompute): the
// O(1) Cauchy–Schwarz dot interval, then the accumulated dots' actual
// range. In float32 mode the level-1 norm product does not bound the
// float32-rounded accumulators, so touched models go straight to the
// dots-reading levels, whose bounds are computed from the very values the
// exact loop would consume.
func (s *Scorer) screenSV(mi int, touched bool, nx, normX float64) bool {
	ix := s.ix
	if gh := ix.gammaH[mi]; gh > 0 { // RBF, without touching the Model
		d2Crit := ix.d2Crit[mi]
		if !touched {
			return ix.snMin[mi]+nx > d2Crit
		}
		if !ix.cfg.Float32 {
			var gap float64
			if normX > ix.maxNorm[mi] {
				gap = normX - ix.maxNorm[mi]
			} else if normX < ix.minNorm[mi] {
				gap = ix.minNorm[mi] - normX
			}
			if gap*gap > d2Crit {
				return true
			}
		}
		lo, hi := ix.svBase[mi], ix.svBase[mi+1]
		b0, slope := gh*nx, 2*gh
		var sb float64
		switch {
		case ix.cfg.Float32 && s.portable:
			sb = fusedRBFSumBoundPortable(ix.coef[lo:hi], ix.snGammaH[lo:hi], s.dots32[lo:hi], b0, slope)
		case ix.cfg.Float32 && s.vector:
			sb = fusedRBFSumBoundVec32(ix.coef[lo:hi], ix.snGammaH[lo:hi], s.dots32[lo:hi], b0, slope)
		case ix.cfg.Float32:
			sb = fusedRBFSumBound32(ix.coef[lo:hi], ix.snGammaH[lo:hi], s.dots32[lo:hi], b0, slope)
		case s.portable:
			sb = fusedRBFSumBoundPortable(ix.coef[lo:hi], ix.snGammaH[lo:hi], s.dots[lo:hi], b0, slope)
		case s.vector:
			sb = fusedRBFSumBoundVec64(ix.coef[lo:hi], ix.snGammaH[lo:hi], s.dots[lo:hi], b0, slope)
		default:
			sb = fusedRBFSumBound64(ix.coef[lo:hi], ix.snGammaH[lo:hi], s.dots[lo:hi], b0, slope)
		}
		return sb < ix.sCrit[mi]
	}

	m := ix.models[mi]
	sumA := ix.sumAlpha[mi]
	tol := m.acceptTol()
	if !touched {
		return screenReject(m, sumA, 0, 0, ix.snMin[mi]+nx, nx, tol)
	}
	if !ix.cfg.Float32 {
		mn := ix.maxNorm[mi] * normX
		if screenReject(m, sumA, -mn, mn, 0, nx, tol) {
			return true
		}
	}
	lo, hi := ix.svBase[mi], ix.svBase[mi+1]
	var dlo, dhi float64
	if ix.cfg.Float32 {
		dlo, dhi = fusedDotRange(s.dots32[lo:hi])
	} else {
		dlo, dhi = fusedDotRange(s.dots[lo:hi])
	}
	return screenReject(m, sumA, dlo, dhi, 0, nx, tol)
}

// Float32DecisionBound returns the documented accuracy contract of the
// float32 fused mode for model m on window x: the float32-mode decision
// value differs from the exact float64 value by at most this much. The
// bound combines the worst-case float32 storage/accumulation error of a
// dot product (≈ (nnz+2)·2⁻²⁴·‖x‖·max‖svᵢ‖, with generous constant) with
// the kernel's Lipschitz constant in the dot product (RBF: 2γ since
// k ≤ 1; sigmoid: γ since tanh' ≤ 1; polynomial: dγ·B^(d−1) on the
// attainable |γ·d+c₀| ≤ B interval; linear: 1) and Σαᵢ. It is
// deliberately loose — a cheap certificate, not a tight estimate.
func Float32DecisionBound(m *Model, x sparse.Vector) float64 {
	const eps32 = 1.0 / (1 << 24)
	nnz := float64(len(x.Idx) + 2)
	nx := x.NormSq()
	normX := math.Sqrt(nx)
	floor := 1e-12 * (1 + math.Abs(m.Rho) + math.Abs(m.R2) + math.Abs(m.SumAA))

	if m.Kernel.Kind == KernelLinear && m.w != nil {
		var nw float64
		for _, wv := range m.w {
			nw += wv * wv
		}
		err := 8 * nnz * eps32 * (1 + normX*math.Sqrt(nw))
		if m.Algo == SVDD {
			err *= 2
		}
		return err + floor
	}

	sn := m.svNorms
	if sn == nil {
		sn = norms(m.SVs)
	}
	maxSN, sumA := 0.0, 0.0
	for i := range sn {
		if sn[i] > maxSN {
			maxSN = sn[i]
		}
		sumA += m.Coef[i]
	}
	maxDot := normX * math.Sqrt(maxSN)
	errDot := 8 * nnz * eps32 * (1 + maxDot)

	var lip float64
	k := m.Kernel
	switch k.Kind {
	case KernelRBF:
		lip = 2 * k.Gamma
	case KernelSigmoid:
		lip = k.Gamma
	case KernelPoly:
		b := k.Gamma*maxDot + math.Abs(k.Coef0) + 1
		lip = float64(k.Degree) * k.Gamma * ipow(b, k.Degree-1)
	default:
		lip = 1
	}
	err := sumA * lip * errDot
	if m.Algo == SVDD {
		err *= 2
	}
	return err + floor
}
