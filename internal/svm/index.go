package svm

import (
	"sync"

	"webtxprofile/internal/sparse"
)

// svIndex is a transposed CSR (inverted index) over a model's support
// vectors: for each feature column, the postings (support-vector ordinal,
// stored value). It exploits that every kernel of the paper factors through
// the dot product x·y — linear and sigmoid directly, polynomial via
// (γ·x·y+c₀)^d, RBF via ‖x−y‖² = ‖x‖²+‖y‖²−2x·y with cached norms — so one
// pass over a window's ~20 non-zeros yields *all* support-vector dot
// products at once, and a tight scalar loop then applies the kernel
// function per SV.
//
// Compared with the per-SV merge join of decisionGeneric (which walks every
// non-zero of every support vector, O(Σᵢ(nnz(xᵢ)+nnz(x)))), the index only
// touches the (sv, column) pairs that actually intersect the window,
// O(nnz(x) + matches + #SVs). On window-shaped data (~20 non-zeros over
// 800+ columns) matches ≪ total SV non-zeros, which is where the speedup
// comes from.
//
// An svIndex is immutable after build and safe for concurrent readers; the
// per-call dot-product accumulator is caller scratch (see dotsPool).
type svIndex struct {
	nsv    int
	starts []int32   // postings for column c: posts[starts[c]:starts[c+1]]
	sv     []int32   // posting: support-vector ordinal
	val    []float64 // posting: the SV's value in that column
}

// buildSVIndex transposes the support vectors into column-major postings.
// Values are stored raw (not α-scaled): the kernel function is applied to
// the raw dot product per SV, and the α weighting happens in the same
// scalar loop.
func buildSVIndex(svs []sparse.Vector) *svIndex {
	maxIdx := -1
	total := 0
	for _, sv := range svs {
		total += len(sv.Idx)
		if n := len(sv.Idx); n > 0 && int(sv.Idx[n-1]) > maxIdx {
			maxIdx = int(sv.Idx[n-1])
		}
	}
	ix := &svIndex{
		nsv:    len(svs),
		starts: make([]int32, maxIdx+2),
		sv:     make([]int32, total),
		val:    make([]float64, total),
	}
	// Counting sort by column: count, prefix-sum, fill.
	for _, sv := range svs {
		for _, c := range sv.Idx {
			ix.starts[c+1]++
		}
	}
	for c := 1; c < len(ix.starts); c++ {
		ix.starts[c] += ix.starts[c-1]
	}
	fill := make([]int32, maxIdx+1)
	copy(fill, ix.starts[:maxIdx+1])
	for i, sv := range svs {
		for k, c := range sv.Idx {
			p := fill[c]
			ix.sv[p] = int32(i)
			ix.val[p] = sv.Val[k]
			fill[c] = p + 1
		}
	}
	return ix
}

// dotsInto computes x·svᵢ for every support vector in one pass over x's
// non-zeros, writing into buf (grown as needed) and returning it. Columns
// of x beyond the index range have no postings and are skipped.
func (ix *svIndex) dotsInto(x sparse.Vector, buf []float64) []float64 {
	if cap(buf) < ix.nsv {
		buf = make([]float64, ix.nsv)
	} else {
		buf = buf[:ix.nsv]
		clear(buf)
	}
	lim := int32(len(ix.starts) - 1)
	for k, c := range x.Idx {
		if c >= lim {
			break // x.Idx is sorted: everything after is out of range too
		}
		xv := x.Val[k]
		for p := ix.starts[c]; p < ix.starts[c+1]; p++ {
			buf[ix.sv[p]] += xv * ix.val[p]
		}
	}
	return buf
}

// dotsPool recycles dot-product accumulators across Decision calls, so the
// indexed path stays allocation-free in steady state without threading
// scratch through the public API. Scorer bypasses the pool with its own
// buffer (one Get/Put per window would still be cheap, but the scorer
// already owns per-window scratch).
var dotsPool = sync.Pool{New: func() any { return new([]float64) }}
