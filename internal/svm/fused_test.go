package svm

import (
	"encoding/json"
	"math"
	"math/rand"
	"sync"
	"testing"

	"webtxprofile/internal/sparse"
)

// randomKernelModel hand-assembles a structurally valid model with the
// given kernel. Validate is NOT called; callers decide whether to prepare
// the caches (and thereby whether the model takes the fused or the
// fallback path).
func randomKernelModel(r *rand.Rand, algo Algorithm, k Kernel, nsv, dim, nnz int) *Model {
	m := &Model{Algo: algo, Kernel: k, Param: 0.1, TrainSize: nsv}
	for i := 0; i < nsv; i++ {
		m.SVs = append(m.SVs, randomSparse(r, dim, nnz))
		m.Coef = append(m.Coef, 0.01+r.Float64())
	}
	switch algo {
	case OCSVM:
		m.Rho = r.Float64()
	case SVDD:
		m.R2 = 1 + r.Float64()
		m.SumAA = r.Float64()
	}
	return m
}

// fusedPopulation builds a mixed validated population covering every
// kernel × algorithm combination, several times over.
func fusedPopulation(t *testing.T, r *rand.Rand, copies, dim int) []*Model {
	t.Helper()
	var models []*Model
	for c := 0; c < copies; c++ {
		for _, algo := range []Algorithm{OCSVM, SVDD} {
			for _, k := range kernelsUnderTest() {
				m := randomKernelModel(r, algo, k, 1+r.Intn(60), dim, 5+r.Intn(20))
				if err := m.Validate(); err != nil {
					t.Fatal(err)
				}
				models = append(models, m)
			}
		}
	}
	return models
}

// TestFusedMatchesPerModelAllKernels is the tentpole equivalence property:
// on a mixed population of all four kernels and both algorithms, the fused
// scorer's Decisions must be bit-identical to each model scored alone, and
// the screened AcceptMask must agree exactly with per-model Accept (the
// screen is admissible — it may only skip work, never flip a mask bit).
func TestFusedMatchesPerModelAllKernels(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	models := fusedPopulation(t, r, 3, 600)
	sc := NewScorer(models)
	for trial := 0; trial < 60; trial++ {
		// Probes overrun the SV column range (dim 700 > 600) so the
		// postings-range break path is exercised too.
		x := randomSparse(r, 700, 3+r.Intn(30))
		dec := sc.Decisions(x)
		for i, m := range models {
			if want := m.Decision(x); dec[i] != want {
				t.Fatalf("trial %d model %d (%v/%v): fused %v vs solo %v",
					trial, i, m.Algo, m.Kernel, dec[i], want)
			}
		}
		mask := sc.AcceptMask(x)
		for i, m := range models {
			if mask[i] != m.Accept(x) {
				t.Fatalf("trial %d model %d (%v/%v): fused mask %v vs solo %v (dec %v)",
					trial, i, m.Algo, m.Kernel, mask[i], m.Accept(x), m.Decision(x))
			}
		}
	}
}

// TestFusedNearBoundaryMask stresses the screen right where it could go
// wrong: models whose decision value sits within ulps of the accept
// threshold. Scoring each model's own support vectors lands many decisions
// near (and exactly on) the boundary; the screened mask must still match
// per-model Accept bit for bit.
func TestFusedNearBoundaryMask(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	models := fusedPopulation(t, r, 2, 300)
	sc := NewScorer(models)
	for _, m := range models {
		for _, x := range m.SVs[:min(5, len(m.SVs))] {
			mask := sc.AcceptMask(x)
			for i, mm := range models {
				if mask[i] != mm.Accept(x) {
					t.Fatalf("model %d (%v/%v) on an SV probe: fused mask %v vs solo %v",
						i, mm.Algo, mm.Kernel, mask[i], mm.Accept(x))
				}
			}
		}
	}
}

// TestFusedEmptyWindowAndEmptyPopulation covers the degenerate inputs: a
// window with no non-zeros (all dots stay zero, every model takes the
// untouched fast path) and a scorer over zero models.
func TestFusedEmptyWindowAndEmptyPopulation(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	models := fusedPopulation(t, r, 1, 200)
	sc := NewScorer(models)
	var empty sparse.Vector
	dec := sc.Decisions(empty)
	for i, m := range models {
		if want := m.Decision(empty); dec[i] != want {
			t.Fatalf("model %d (%v/%v): empty-window fused %v vs solo %v",
				i, m.Algo, m.Kernel, dec[i], want)
		}
	}
	mask := sc.AcceptMask(empty)
	for i, m := range models {
		if mask[i] != m.Accept(empty) {
			t.Fatalf("model %d: empty-window mask mismatch", i)
		}
	}

	none := NewScorer(nil)
	if got := none.Decisions(randomSparse(r, 50, 5)); len(got) != 0 {
		t.Fatalf("empty population decisions = %v", got)
	}
	if got := none.AcceptMask(randomSparse(r, 50, 5)); len(got) != 0 {
		t.Fatalf("empty population mask = %v", got)
	}
}

// TestFusedUnpreparedFallback mixes unprepared (never Validated) models
// into the population: they must take the per-model fallback path and
// still agree with their own Decision, while prepared models stay fused.
func TestFusedUnpreparedFallback(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	models := fusedPopulation(t, r, 1, 300)
	raw := randomKernelModel(r, OCSVM, RBF(0.5), 20, 300, 10) // no Validate
	rawLin := randomLinearModel(r, SVDD, 15, 300, 10)         // no Validate
	models = append(models, raw, rawLin)
	sc := NewScorer(models)

	prev := ReadKernelStats()
	for trial := 0; trial < 10; trial++ {
		x := randomSparse(r, 300, 12)
		dec := sc.Decisions(x)
		for i, m := range models {
			if want := m.Decision(x); dec[i] != want {
				t.Fatalf("model %d: fused %v vs solo %v", i, dec[i], want)
			}
		}
		mask := sc.AcceptMask(x)
		for i, m := range models {
			if mask[i] != m.Accept(x) {
				t.Fatalf("model %d: mask mismatch", i)
			}
		}
	}
	d := ReadKernelStats().Sub(prev)
	if d.FallbackDecisions != 2*2*10 { // 2 unprepared models × (Decisions+AcceptMask) × 10 trials
		t.Errorf("FallbackDecisions = %d, want 40", d.FallbackDecisions)
	}
	if want := uint64(2*10*len(models) - 2*2*10); d.FusedDecisions != want {
		t.Errorf("FusedDecisions = %d, want %d", d.FusedDecisions, want)
	}
}

// TestFusedSurvivesJSONRoundTrip rebuilds the population from its JSON
// serialization and checks the fused decisions are unchanged (Validate on
// unmarshal re-prepares the caches the index is built from).
func TestFusedSurvivesJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	models := fusedPopulation(t, r, 1, 250)
	back := make([]*Model, len(models))
	for i, m := range models {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		back[i] = new(Model)
		if err := json.Unmarshal(data, back[i]); err != nil {
			t.Fatal(err)
		}
	}
	sc, sc2 := NewScorer(models), NewScorer(back)
	for trial := 0; trial < 20; trial++ {
		x := randomSparse(r, 250, 10)
		a, b := sc.Decisions(x), sc2.Decisions(x)
		for i := range models {
			if a[i] != b[i] {
				t.Fatalf("model %d: decision drift after round trip: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

// TestFusedFloat32WithinBound validates the float32 mode's accuracy
// contract: every float32-mode decision stays within Float32DecisionBound
// of the exact float64 decision, and the accept masks agree except for
// windows whose exact decision sits within the bound of the boundary.
func TestFusedFloat32WithinBound(t *testing.T) {
	r := rand.New(rand.NewSource(76))
	models := fusedPopulation(t, r, 2, 400)
	exact := NewScorer(models)
	approx := NewFusedIndex(models, FusedConfig{Float32: true}).NewScorer()
	checked := 0
	for trial := 0; trial < 40; trial++ {
		x := randomSparse(r, 400, 5+r.Intn(20))
		d64 := append([]float64(nil), exact.Decisions(x)...)
		d32 := approx.Decisions(x)
		m32 := append([]bool(nil), approx.AcceptMask(x)...)
		for i, m := range models {
			bound := Float32DecisionBound(m, x)
			if diff := math.Abs(d32[i] - d64[i]); diff > bound {
				t.Fatalf("model %d (%v/%v): float32 drift %g exceeds bound %g",
					i, m.Algo, m.Kernel, diff, bound)
			}
			if math.Abs(d64[i]) > bound+m.acceptTol() {
				if m32[i] != m.acceptsValue(d64[i]) {
					t.Fatalf("model %d: float32 mask flipped outside the bound (dec %v, bound %g)",
						i, d64[i], bound)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no decision landed outside the float32 bound; test is vacuous")
	}
}

// forceLaneKernels runs f with KernelsAuto resolving to the Go lane
// kernels even where the packed AVX-512 engine is available, restoring
// the real resolution afterwards.
func forceLaneKernels(t *testing.T, f func()) {
	t.Helper()
	prev := disablePackedKernels
	disablePackedKernels = true
	defer func() { disablePackedKernels = prev }()
	f()
}

// TestFusedEnginesBitIdentical pins the engine-equivalence contract all
// three kernel sets share: for the same models and probes, the packed
// AVX-512 engine (where available), the Go lane engine, and the portable
// per-posting engine produce bit-identical decisions — float64 AND
// float32 — and identical accept masks. The layout partitions postings
// into (block, column) groups visited in one fixed order, so every engine
// feeds each accumulator the same terms in the same order with the same
// per-term rounding (the packed kernels deliberately split the multiply
// and the add; see fusedasm_amd64.go).
func TestFusedEnginesBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	models := fusedPopulation(t, r, 2, 400)
	for _, f32 := range []bool{false, true} {
		cfg := FusedConfig{Float32: f32}
		auto := NewFusedIndex(models, cfg).NewScorer()
		var lanes *Scorer
		forceLaneKernels(t, func() {
			lanes = NewFusedIndex(models, cfg).NewScorer()
		})
		cfg.Kernels = KernelsPortable
		portable := NewFusedIndex(models, cfg).NewScorer()
		for trial := 0; trial < 40; trial++ {
			x := randomSparse(r, 450, 3+r.Intn(25))
			dAuto := append([]float64(nil), auto.Decisions(x)...)
			dLanes := append([]float64(nil), lanes.Decisions(x)...)
			dPort := portable.Decisions(x)
			for i := range models {
				if math.Float64bits(dAuto[i]) != math.Float64bits(dPort[i]) ||
					math.Float64bits(dLanes[i]) != math.Float64bits(dPort[i]) {
					t.Fatalf("float32=%v trial %d model %d: engines disagree: auto %x lanes %x portable %x",
						f32, trial, i, math.Float64bits(dAuto[i]), math.Float64bits(dLanes[i]), math.Float64bits(dPort[i]))
				}
			}
			mAuto := append([]bool(nil), auto.AcceptMask(x)...)
			mLanes := append([]bool(nil), lanes.AcceptMask(x)...)
			mPort := portable.AcceptMask(x)
			for i := range models {
				if mAuto[i] != mPort[i] || mLanes[i] != mPort[i] {
					t.Fatalf("float32=%v trial %d model %d: masks disagree: auto %v lanes %v portable %v",
						f32, trial, i, mAuto[i], mLanes[i], mPort[i])
				}
			}
		}
	}
}

// TestFusedScreeningCounters checks the observability satellite: scoring
// through AcceptMask visits postings, screens out hopeless models, and
// counts fused decisions.
func TestFusedScreeningCounters(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	// RBF models over columns 0..199 with a solid rejection margin: probes
	// on disjoint columns have zero dots, so the untouched screen bound
	// exp(−γ·(snMin+nx)) · Σα − ρ is decisively negative.
	var models []*Model
	for i := 0; i < 16; i++ {
		m := randomKernelModel(r, OCSVM, RBF(0.5), 10, 200, 8)
		m.Rho = 5 + r.Float64()
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	sc := NewScorer(models)

	prev := ReadKernelStats()
	far := randomSparse(r, 150, 10) // overlapping columns: postings visited
	sc.AcceptMask(far)
	d := ReadKernelStats().Sub(prev)
	if d.PostingsVisited == 0 {
		t.Error("PostingsVisited stayed zero across an overlapping window")
	}
	if d.ScreenedModels == 0 {
		t.Error("ScreenedModels stayed zero despite hopeless models")
	}
	if d.FusedDecisions != uint64(len(models)) {
		t.Errorf("FusedDecisions = %d, want %d", d.FusedDecisions, len(models))
	}

	// Decisions is exact and never screens.
	prev = ReadKernelStats()
	sc.Decisions(far)
	if d := ReadKernelStats().Sub(prev); d.ScreenedModels != 0 {
		t.Errorf("Decisions screened %d models; must be exact", d.ScreenedModels)
	}
}

// TestFusedScorerAllocs gates the fused hot path: once constructed, a
// scorer's AcceptMask and Decisions must not allocate (the name matches
// the CI allocation-gate step's -run Allocs filter), across every
// precision × engine combination — the packed kernels are //go:noescape,
// so handing slices' element pointers to them must not force the scratch
// to the heap per call.
func TestFusedScorerAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	models := fusedPopulation(t, r, 2, 300)
	cases := map[string]FusedConfig{
		"float64":          {},
		"float32":          {Float32: true},
		"float64-portable": {Kernels: KernelsPortable},
		"float32-portable": {Float32: true, Kernels: KernelsPortable},
	}
	scorers := map[string]*Scorer{}
	for name, cfg := range cases {
		scorers[name] = NewFusedIndex(models, cfg).NewScorer()
	}
	forceLaneKernels(t, func() {
		scorers["float64-lanes"] = NewFusedIndex(models, FusedConfig{}).NewScorer()
		scorers["float32-lanes"] = NewFusedIndex(models, FusedConfig{Float32: true}).NewScorer()
	})
	probes := make([]sparse.Vector, 8)
	for i := range probes {
		probes[i] = randomSparse(r, 300, 12)
	}
	for name, sc := range scorers {
		i := 0
		if avg := testing.AllocsPerRun(50, func() {
			sc.AcceptMask(probes[i%len(probes)])
			i++
		}); avg != 0 {
			t.Errorf("%s AcceptMask allocates %.1f per window, want 0", name, avg)
		}
		if avg := testing.AllocsPerRun(50, func() {
			sc.Decisions(probes[i%len(probes)])
			i++
		}); avg != 0 {
			t.Errorf("%s Decisions allocates %.1f per window, want 0", name, avg)
		}
	}
}

// TestFusedIndexSharedAcrossScorers is the shard-sharing property: many
// scorers attached to one index, scoring concurrently, each reproduce the
// per-model decisions (run under -race in CI).
func TestFusedIndexSharedAcrossScorers(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	models := fusedPopulation(t, r, 1, 300)
	ix := NewFusedIndex(models, FusedConfig{})
	if ix.NumModels() != len(models) {
		t.Fatalf("NumModels = %d", ix.NumModels())
	}
	probes := make([]sparse.Vector, 16)
	want := make([][]float64, len(probes))
	for i := range probes {
		probes[i] = randomSparse(r, 300, 10)
		want[i] = DecisionBatch(models, probes[i], nil)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := ix.NewScorer()
			for i, x := range probes {
				dec := sc.Decisions(x)
				for j := range dec {
					if dec[j] != want[i][j] {
						t.Errorf("probe %d model %d: %v vs %v", i, j, dec[j], want[i][j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
