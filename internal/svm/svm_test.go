package svm

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"webtxprofile/internal/sparse"
)

// gaussCluster generates n points around a center in dim dimensions.
func gaussCluster(r *rand.Rand, n, dim int, center, spread float64) []sparse.Vector {
	out := make([]sparse.Vector, n)
	for i := range out {
		dense := make([]float64, dim)
		for d := range dense {
			dense[d] = center + spread*r.NormFloat64()
		}
		out[i] = sparse.FromDense(dense)
	}
	return out
}

// binaryCluster generates window-like vectors: a core set of always-on
// columns plus a few noisy ones, mimicking real feature vectors.
func binaryCluster(r *rand.Rand, n int, core []int, noise []int, pNoise float64) []sparse.Vector {
	out := make([]sparse.Vector, n)
	for i := range out {
		dense := make(map[int]float64)
		for _, c := range core {
			dense[c] = 1
		}
		for _, c := range noise {
			if r.Float64() < pNoise {
				dense[c] = 1
			}
		}
		out[i] = sparse.New(dense)
	}
	return out
}

func kernelsUnderTest() []Kernel {
	return []Kernel{
		Linear(),
		RBF(0.5),
		Poly(1, 1, 2),
		Sigmoid(0.1, 0),
	}
}

func TestKernelValues(t *testing.T) {
	x := sparse.New(map[int]float64{0: 1, 2: 1})
	y := sparse.New(map[int]float64{0: 1, 1: 1})
	if got := Linear().Eval(x, y); got != 1 {
		t.Errorf("linear = %v, want 1", got)
	}
	if got := RBF(1).Eval(x, y); math.Abs(got-math.Exp(-2)) > 1e-12 {
		t.Errorf("rbf = %v, want e^-2", got)
	}
	if got := Poly(1, 1, 2).Eval(x, y); got != 4 {
		t.Errorf("poly = %v, want (1+1)^2 = 4", got)
	}
	if got := Sigmoid(1, 0).Eval(x, y); math.Abs(got-math.Tanh(1)) > 1e-12 {
		t.Errorf("sigmoid = %v, want tanh(1)", got)
	}
}

func TestKernelSymmetryAndRBFSelf(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := gaussCluster(r, 20, 6, 0.5, 1)
	for _, k := range kernelsUnderTest() {
		for i := 0; i < len(xs); i++ {
			for j := i; j < len(xs); j++ {
				a, b := k.Eval(xs[i], xs[j]), k.Eval(xs[j], xs[i])
				if math.Abs(a-b) > 1e-12 {
					t.Fatalf("%v not symmetric: %v vs %v", k, a, b)
				}
			}
		}
	}
	for _, x := range xs {
		if got := RBF(0.7).Eval(x, x); math.Abs(got-1) > 1e-12 {
			t.Errorf("rbf self = %v, want 1", got)
		}
	}
}

func TestEvalNormsMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	xs := gaussCluster(r, 10, 5, 0, 1)
	for _, k := range kernelsUnderTest() {
		for i := range xs {
			for j := range xs {
				want := k.Eval(xs[i], xs[j])
				got := k.evalNorms(xs[i], xs[j], xs[i].NormSq(), xs[j].NormSq())
				if math.Abs(want-got) > 1e-9 {
					t.Fatalf("%v evalNorms mismatch: %v vs %v", k, got, want)
				}
			}
		}
	}
}

func TestKernelValidate(t *testing.T) {
	good := kernelsUnderTest()
	for _, k := range good {
		if err := k.Validate(); err != nil {
			t.Errorf("%v rejected: %v", k, err)
		}
	}
	bad := []Kernel{
		{},
		{Kind: KernelKind(99)},
		{Kind: KernelRBF, Gamma: 0},
		{Kind: KernelPoly, Gamma: 1, Degree: 0},
		{Kind: KernelSigmoid, Gamma: -1},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("%+v accepted", k)
		}
	}
}

func TestParseKernelKindRoundTrip(t *testing.T) {
	for _, k := range AllKernels {
		got, err := ParseKernelKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v: %v, %v", k, got, err)
		}
	}
	if _, err := ParseKernelKind("fourier"); err == nil {
		t.Error("ParseKernelKind accepted junk")
	}
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, a := range []Algorithm{OCSVM, SVDD} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v: %v, %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("k-means"); err == nil {
		t.Error("ParseAlgorithm accepted junk")
	}
}

// checkKKT asserts the solver invariants on a trained model's dual
// solution: Σα = 1 and 0 ≤ αᵢ ≤ U.
func checkKKT(t *testing.T, m *Model, u float64) {
	t.Helper()
	var sum float64
	for _, a := range m.Coef {
		if a < -1e-9 || a > u+1e-9 {
			t.Errorf("coefficient %g outside [0, %g]", a, u)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("Σα = %v, want 1", sum)
	}
}

func TestOCSVMTrainsOnAllKernels(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := gaussCluster(r, 120, 8, 1, 0.3)
	for _, k := range kernelsUnderTest() {
		m, err := TrainOCSVM(xs, 0.1, TrainConfig{Kernel: k})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !m.Converged {
			t.Errorf("%v: did not converge in %d iterations", k, m.Iterations)
		}
		checkKKT(t, m, 1/(0.1*float64(len(xs))))
		// ν upper-bounds the training outlier fraction (soft check with
		// slack for the boundary).
		self := m.AcceptanceRatio(xs)
		if self < 1-0.1-0.08 {
			t.Errorf("%v: self acceptance %.3f too low for nu=0.1", k, self)
		}
	}
}

func TestOCSVMNuControlsSupportVectors(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	xs := gaussCluster(r, 150, 6, 0, 1)
	for _, nu := range []float64{0.05, 0.2, 0.5} {
		m, err := TrainOCSVM(xs, nu, TrainConfig{Kernel: RBF(0.5)})
		if err != nil {
			t.Fatal(err)
		}
		// ν lower-bounds the support-vector fraction.
		frac := float64(m.NumSVs()) / float64(len(xs))
		if frac < nu-0.05 {
			t.Errorf("nu=%v: SV fraction %.3f below bound", nu, frac)
		}
		// And upper-bounds the rejected-training fraction.
		rejected := 1 - m.AcceptanceRatio(xs)
		if rejected > nu+0.05 {
			t.Errorf("nu=%v: rejected fraction %.3f above bound", nu, rejected)
		}
	}
}

func TestOCSVMRejectsFarOutliers(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	train := gaussCluster(r, 100, 6, 1, 0.2)
	far := gaussCluster(r, 50, 6, 8, 0.2)
	m, err := TrainOCSVM(train, 0.1, TrainConfig{Kernel: RBF(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.AcceptanceRatio(far); got > 0.02 {
		t.Errorf("far cluster acceptance %.3f, want ~0", got)
	}
	if got := m.AcceptanceRatio(train); got < 0.85 {
		t.Errorf("train acceptance %.3f, want >= 0.85", got)
	}
}

func TestSVDDTrainsOnAllKernels(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	xs := gaussCluster(r, 120, 8, 1, 0.3)
	for _, k := range kernelsUnderTest() {
		m, err := TrainSVDD(xs, 0.1, TrainConfig{Kernel: k})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		checkKKT(t, m, 0.1)
		if m.Algo != SVDD {
			t.Errorf("algo = %v", m.Algo)
		}
	}
}

func TestSVDDGeometryLinearKernel(t *testing.T) {
	// With a linear kernel and C = 1 (hard SVDD), the decision boundary is
	// a sphere enclosing all the data: every training point is accepted
	// and R² ≥ max ‖x − a‖² − tol.
	r := rand.New(rand.NewSource(5))
	xs := gaussCluster(r, 60, 4, 0, 1)
	m, err := TrainSVDD(xs, 1, TrainConfig{Kernel: Linear()})
	if err != nil {
		t.Fatal(err)
	}
	if m.R2 <= 0 {
		t.Fatalf("R² = %v, want positive", m.R2)
	}
	if got := m.AcceptanceRatio(xs); got < 0.99 {
		t.Errorf("hard SVDD train acceptance %.3f, want 1", got)
	}
}

func TestSVDDRejectsFarOutliers(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	train := gaussCluster(r, 100, 6, 1, 0.2)
	far := gaussCluster(r, 50, 6, 8, 0.2)
	m, err := TrainSVDD(train, 0.1, TrainConfig{Kernel: RBF(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.AcceptanceRatio(far); got > 0.02 {
		t.Errorf("far cluster acceptance %.3f, want ~0", got)
	}
	if got := m.AcceptanceRatio(train); got < 0.8 {
		t.Errorf("train acceptance %.3f, want >= 0.8", got)
	}
}

func TestSVDDCClampedToFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := gaussCluster(r, 50, 4, 0, 1)
	// C below 1/l would make Σα=1 infeasible; the trainer clamps.
	m, err := TrainSVDD(xs, 1e-6, TrainConfig{Kernel: Linear()})
	if err != nil {
		t.Fatalf("clamped SVDD failed: %v", err)
	}
	checkKKT(t, m, 1/float64(len(xs))+1e-9)
}

func TestSVDDFreeSVDecisionIsZero(t *testing.T) {
	// At any free support vector (0 < α < C) the decision value must be
	// ~0: the vector lies exactly on the hypersphere (Eq. 11/12).
	r := rand.New(rand.NewSource(8))
	xs := gaussCluster(r, 80, 5, 0, 1)
	c := 0.05
	m, err := TrainSVDD(xs, c, TrainConfig{Kernel: RBF(0.3), Eps: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i, a := range m.Coef {
		if a > 1e-6 && a < c-1e-6 {
			if d := m.Decision(m.SVs[i]); math.Abs(d) > 1e-4 {
				t.Errorf("free SV %d decision = %g, want ~0", i, d)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no free SVs in this configuration")
	}
}

func TestOCSVMFreeSVDecisionIsZero(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	xs := gaussCluster(r, 80, 5, 0, 1)
	nu := 0.2
	m, err := TrainOCSVM(xs, nu, TrainConfig{Kernel: RBF(0.3), Eps: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	u := 1 / (nu * float64(len(xs)))
	checked := 0
	for i, a := range m.Coef {
		if a > 1e-6 && a < u-1e-6 {
			if d := m.Decision(m.SVs[i]); math.Abs(d) > 1e-4 {
				t.Errorf("free SV %d decision = %g, want ~0", i, d)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no free SVs in this configuration")
	}
}

func TestTrainDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	xs := gaussCluster(r, 40, 4, 0, 1)
	cfg := TrainConfig{Kernel: Linear()}
	mo, err := Train(OCSVM, xs, 0.2, cfg)
	if err != nil || mo.Algo != OCSVM {
		t.Errorf("Train(OCSVM): %v %v", mo, err)
	}
	ms, err := Train(SVDD, xs, 0.2, cfg)
	if err != nil || ms.Algo != SVDD {
		t.Errorf("Train(SVDD): %v %v", ms, err)
	}
	if _, err := Train(Algorithm(0), xs, 0.2, cfg); err == nil {
		t.Error("Train accepted invalid algorithm")
	}
}

func TestTrainInputValidation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := gaussCluster(r, 10, 3, 0, 1)
	cases := []struct {
		name string
		run  func() error
	}{
		{"empty ocsvm", func() error { _, err := TrainOCSVM(nil, 0.5, TrainConfig{Kernel: Linear()}); return err }},
		{"empty svdd", func() error { _, err := TrainSVDD(nil, 0.5, TrainConfig{Kernel: Linear()}); return err }},
		{"nu zero", func() error { _, err := TrainOCSVM(xs, 0, TrainConfig{Kernel: Linear()}); return err }},
		{"nu above one", func() error { _, err := TrainOCSVM(xs, 1.5, TrainConfig{Kernel: Linear()}); return err }},
		{"c zero", func() error { _, err := TrainSVDD(xs, 0, TrainConfig{Kernel: Linear()}); return err }},
		{"bad kernel", func() error { _, err := TrainOCSVM(xs, 0.5, TrainConfig{}); return err }},
		{"negative eps", func() error {
			_, err := TrainOCSVM(xs, 0.5, TrainConfig{Kernel: Linear(), Eps: -1})
			return err
		}},
	}
	for _, tc := range cases {
		if tc.run() == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	xs := binaryCluster(r, 60, []int{0, 4, 9}, []int{15, 20, 30}, 0.3)
	for _, algo := range []Algorithm{OCSVM, SVDD} {
		m, err := Train(algo, xs, 0.2, TrainConfig{Kernel: RBF(0.5)})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Model
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		probe := binaryCluster(r, 20, []int{0, 4, 9}, []int{15, 20, 30}, 0.3)
		for _, x := range probe {
			a, b := m.Decision(x), back.Decision(x)
			if math.Abs(a-b) > 1e-12 {
				t.Errorf("%v: decision drift after round trip: %v vs %v", algo, a, b)
			}
		}
	}
}

func TestModelValidate(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	xs := gaussCluster(r, 30, 4, 0, 1)
	m, err := TrainOCSVM(xs, 0.3, TrainConfig{Kernel: Linear()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("trained model invalid: %v", err)
	}
	bad := *m
	bad.Coef = bad.Coef[:len(bad.Coef)-1]
	if err := bad.Validate(); err == nil {
		t.Error("mismatched coef length accepted")
	}
	bad2 := *m
	bad2.Algo = 0
	if err := bad2.Validate(); err == nil {
		t.Error("invalid algorithm accepted")
	}
	bad3 := *m
	bad3.SVs = nil
	bad3.Coef = nil
	if err := bad3.Validate(); err == nil {
		t.Error("empty model accepted")
	}
}

func TestAcceptanceRatioEmpty(t *testing.T) {
	m := &Model{}
	if got := m.AcceptanceRatio(nil); got != 0 {
		t.Errorf("empty acceptance = %v", got)
	}
}

func TestColumnCacheEviction(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	xs := gaussCluster(r, 50, 4, 0, 1)
	c := newColumnCache(Linear(), xs, 0)
	c.ring = c.ring[:2] // cap at 2 columns to force eviction
	c1 := append([]float64(nil), c.column(1)...)
	_ = c.column(2)
	_ = c.column(3) // evicts column 1 (FIFO)
	if _, resident := c.cols[1]; resident {
		t.Error("oldest column not evicted")
	}
	if _, resident := c.cols[2]; !resident {
		t.Error("newer column evicted out of FIFO order")
	}
	c1b := c.column(1)
	for t2 := range c1 {
		if c1[t2] != c1b[t2] {
			t.Fatalf("recomputed column differs at %d", t2)
		}
	}
	if len(c.cols) > 2 {
		t.Errorf("cache grew past cap: %d", len(c.cols))
	}
}

func TestColumnCacheCounters(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	xs := gaussCluster(r, 10, 4, 0, 1)
	before := ReadKernelStats()
	c := newColumnCache(Linear(), xs, 0)
	_ = c.column(0)
	_ = c.column(0)
	_ = c.column(1)
	_ = c.diagonal()
	d := ReadKernelStats().Sub(before)
	if d.CacheMisses != 2 || d.CacheHits != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/2", d.CacheHits, d.CacheMisses)
	}
	// Two column fills of 10 evals each plus the 10-entry diagonal.
	if d.KernelEvals != 30 {
		t.Errorf("kernel evals = %d, want 30", d.KernelEvals)
	}
}

func TestBinaryWindowSeparation(t *testing.T) {
	// Window-vector-like data: two users with overlapping but distinct
	// column sets must be separable by both algorithms with a linear
	// kernel — the setting of the paper's Tab. III where linear wins.
	r := rand.New(rand.NewSource(15))
	userA := binaryCluster(r, 150, []int{0, 4, 7, 12}, []int{20, 21, 22}, 0.4)
	userB := binaryCluster(r, 150, []int{0, 4, 30, 31}, []int{40, 41}, 0.4)
	for _, algo := range []Algorithm{OCSVM, SVDD} {
		m, err := Train(algo, userA, 0.1, TrainConfig{Kernel: Linear()})
		if err != nil {
			t.Fatal(err)
		}
		self := m.AcceptanceRatio(userA)
		other := m.AcceptanceRatio(userB)
		if self < 0.85 {
			t.Errorf("%v: self acceptance %.3f", algo, self)
		}
		if other > 0.1 {
			t.Errorf("%v: other acceptance %.3f", algo, other)
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	xs := gaussCluster(r, 60, 5, 0, 1)
	m1, err := TrainOCSVM(xs, 0.2, TrainConfig{Kernel: RBF(0.4)})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainOCSVM(xs, 0.2, TrainConfig{Kernel: RBF(0.4)})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Rho != m2.Rho || m1.NumSVs() != m2.NumSVs() || m1.Iterations != m2.Iterations {
		t.Error("training is not deterministic")
	}
}

func TestSigmoidIndefiniteKernelStillTrains(t *testing.T) {
	// The sigmoid kernel is indefinite for large gamma: the SMO curvature
	// guard (tau) must keep the solver stable and the model usable.
	r := rand.New(rand.NewSource(21))
	xs := gaussCluster(r, 80, 6, 1, 0.4)
	m, err := TrainOCSVM(xs, 0.2, TrainConfig{Kernel: Sigmoid(5, -1)})
	if err != nil {
		t.Fatal(err)
	}
	checkKKT(t, m, 1/(0.2*float64(len(xs))))
	if self := m.AcceptanceRatio(xs); self < 0.5 {
		t.Errorf("self acceptance %.3f collapsed under indefinite kernel", self)
	}
}

func TestTrainSingleVector(t *testing.T) {
	// Degenerate but legal: a single training window.
	x := sparse.New(map[int]float64{0: 1, 3: 1})
	for _, algo := range []Algorithm{OCSVM, SVDD} {
		m, err := Train(algo, []sparse.Vector{x}, 0.5, TrainConfig{Kernel: Linear()})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !m.Accept(x) {
			t.Errorf("%v: rejects its only training vector", algo)
		}
	}
}

func TestModelAcceptToleranceAtBoundary(t *testing.T) {
	// Duplicated training windows sit exactly on the decision boundary;
	// Accept must treat float dust below zero as accepted.
	x := sparse.New(map[int]float64{0: 1, 5: 1, 9: 1})
	xs := make([]sparse.Vector, 30)
	for i := range xs {
		xs[i] = x
	}
	m, err := TrainOCSVM(xs, 0.1, TrainConfig{Kernel: Linear()})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Accept(x) {
		t.Errorf("duplicated training vector rejected (decision %g)", m.Decision(x))
	}
}
