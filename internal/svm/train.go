package svm

import (
	"fmt"

	"webtxprofile/internal/sparse"
)

// TrainConfig carries the shared training knobs. The zero value of Eps,
// MaxIter and CacheMB selects sensible defaults.
type TrainConfig struct {
	// Kernel is the kernel function; required.
	Kernel Kernel
	// Eps is the SMO stopping tolerance (default DefaultEps).
	Eps float64
	// MaxIter caps SMO iterations (default scales with training size).
	MaxIter int
	// CacheMB bounds the kernel column cache (default 64 MB).
	CacheMB int
}

func (c TrainConfig) validate() error {
	if err := c.Kernel.Validate(); err != nil {
		return err
	}
	if c.Eps < 0 {
		return fmt.Errorf("svm: negative eps %v", c.Eps)
	}
	return nil
}

// qProvider supplies raw kernel-matrix columns to the SMO solver: either a
// lazily computed bounded columnCache (standalone trainings) or a fully
// materialized Gram shared across trainings on the same data.
type qProvider interface {
	column(i int) []float64
	diagonal() []float64
}

// TrainOCSVM fits a ν-one-class SVM (Sect. II-A of the paper) on the
// training vectors. nu ∈ (0, 1] upper-bounds the fraction of training
// outliers and lower-bounds the fraction of support vectors.
//
// The dual solved is Eq. 5: min ½ΣΣ αᵢαⱼk(xᵢ,xⱼ) s.t. 0 ≤ αᵢ ≤ 1/(νl),
// Σαᵢ = 1. The offset ρ is recovered from the KKT conditions on free
// support vectors, giving the decision function of Eq. 6.
func TrainOCSVM(xs []sparse.Vector, nu float64, cfg TrainConfig) (*Model, error) {
	return trainOCSVM(xs, nu, cfg, nil)
}

// trainOCSVM runs the OC-SVM dual against prov (a lazy columnCache over xs
// is created when prov is nil).
func trainOCSVM(xs []sparse.Vector, nu float64, cfg TrainConfig, prov qProvider) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if nu <= 0 || nu > 1 {
		return nil, fmt.Errorf("svm: nu = %v out of (0, 1]", nu)
	}
	l := len(xs)
	u := 1 / (nu * float64(l))
	if u > 1 {
		u = 1 // νl < 1: the box never binds beyond Σα=1
	}
	if prov == nil {
		prov = newColumnCache(cfg.Kernel, xs, cfg.CacheMB)
	}
	pr := &smoProblem{
		n:      l,
		kcol:   prov.column,
		kdiag:  prov.diagonal(),
		qscale: 1,
		u:      u,
		eps:    cfg.Eps,
		maxItr: cfg.MaxIter,
	}
	res, err := pr.solve()
	if err != nil {
		return nil, err
	}
	m := &Model{
		Algo:       OCSVM,
		Kernel:     cfg.Kernel,
		Rho:        calibratedBias(res.alpha, res.grad, u),
		Param:      nu,
		TrainSize:  l,
		Converged:  res.converged,
		Iterations: res.iters,
	}
	m.collectSVs(xs, res.alpha)
	return m, nil
}

// TrainSVDD fits a Support Vector Data Description (Sect. II-B of the
// paper). c is the box penalty C controlling the fraction of training data
// left outside the hypersphere; it is clamped to [1/l, 1] so the dual
// (Σα = 1, 0 ≤ αᵢ ≤ C) stays feasible, per LIBSVM convention.
//
// The dual solved is Eq. 10 negated: min αᵀKα − Σαᵢk(xᵢ,xᵢ), i.e.
// Q = 2K and p = −diag(K) in the shared SMO form. The squared radius
// follows from the KKT multiplier b of the equality constraint:
// R² = ΣΣ αᵢαⱼk(xᵢ,xⱼ) − b, which equals Eq. 11 evaluated at any free
// support vector.
func TrainSVDD(xs []sparse.Vector, c float64, cfg TrainConfig) (*Model, error) {
	return trainSVDD(xs, c, cfg, nil)
}

// trainSVDD runs the SVDD dual against prov (a lazy columnCache over xs is
// created when prov is nil).
func trainSVDD(xs []sparse.Vector, c float64, cfg TrainConfig, prov qProvider) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if c <= 0 {
		return nil, fmt.Errorf("svm: C = %v must be positive", c)
	}
	l := len(xs)
	u := c
	if min := 1 / float64(l); u < min {
		u = min
	}
	if u > 1 {
		u = 1
	}
	if prov == nil {
		prov = newColumnCache(cfg.Kernel, xs, cfg.CacheMB)
	}
	diag := prov.diagonal() // = k(xᵢ,xᵢ); the solver applies Q = 2K
	p := make([]float64, l)
	for i := range p {
		p[i] = -diag[i]
	}
	pr := &smoProblem{
		n:      l,
		kcol:   prov.column,
		kdiag:  diag,
		qscale: 2,
		p:      p,
		u:      u,
		eps:    cfg.Eps,
		maxItr: cfg.MaxIter,
	}
	res, err := pr.solve()
	if err != nil {
		return nil, err
	}
	// sumAA = ΣΣ αᵢαⱼ k(xᵢ,xⱼ) = αᵀKα. The solver's objective is
	// g(α) = ½αᵀ(2K)α + pᵀα = αᵀKα + pᵀα, hence sumAA = obj − pᵀα.
	var pa float64
	for i := range p {
		pa += res.alpha[i] * p[i]
	}
	sumAA := res.obj - pa
	m := &Model{
		Algo:       SVDD,
		Kernel:     cfg.Kernel,
		R2:         sumAA - calibratedBias(res.alpha, res.grad, u),
		SumAA:      sumAA,
		Param:      c,
		TrainSize:  l,
		Converged:  res.converged,
		Iterations: res.iters,
	}
	m.collectSVs(xs, res.alpha)
	return m, nil
}

// Train dispatches on the algorithm, mapping param to ν (OC-SVM) or C
// (SVDD) — the paper optimizes exactly this pair per user (Sect. IV-C).
func Train(algo Algorithm, xs []sparse.Vector, param float64, cfg TrainConfig) (*Model, error) {
	switch algo {
	case OCSVM:
		return TrainOCSVM(xs, param, cfg)
	case SVDD:
		return TrainSVDD(xs, param, cfg)
	default:
		return nil, fmt.Errorf("svm: unknown algorithm %d", int(algo))
	}
}

// collectSVs retains the vectors with αᵢ > 0 (the support vectors,
// Sect. II-A) and their coefficients.
func (m *Model) collectSVs(xs []sparse.Vector, alpha []float64) {
	const tol = 1e-12
	for i, a := range alpha {
		if a > tol {
			m.SVs = append(m.SVs, xs[i])
			m.Coef = append(m.Coef, a)
		}
	}
	m.prepare()
}
