package svm

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"webtxprofile/internal/sparse"
)

// fuzzProbe derives a sparse window from raw fuzz bytes: byte pairs become
// (index delta, value), keeping indices strictly ascending so the vector
// meets the sparse contract, with values spanning signs and magnitudes the
// random test vectors never produce.
func fuzzProbe(raw []byte) sparse.Vector {
	dense := make(map[int]float64, len(raw)/2)
	idx := 0
	for i := 0; i+1 < len(raw); i += 2 {
		idx += 1 + int(raw[i]%32)
		// Map the value byte to [-6.35, 6.4]: zero and sign flips included.
		dense[idx] = (float64(raw[i+1]) - 127) / 20
	}
	return sparse.New(dense)
}

// fuzzVsScalarSeeds covers the interesting probe shapes: empty, single
// column, dense runs, negative values, and values large enough to push the
// RBF screening bound's table index past both clamp ends.
func fuzzVsScalarSeeds() [][]byte {
	return [][]byte{
		{},
		{0, 0},
		{1, 255},
		{3, 0, 5, 64, 7, 200},
		{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0, 8},
		{31, 255, 31, 255, 31, 255, 31, 255},
		{2, 127, 4, 128, 8, 126, 16, 129},
		{5, 250, 5, 5, 5, 250, 5, 5, 5, 250},
	}
}

// FuzzFusedVsScalar is the differential fuzz target for the scoring
// engines: for an arbitrary window over a mixed population, every engine
// (packed AVX-512 where available, Go lanes, portable) must produce
// float64 decisions bit-identical to scoring each model alone, identical
// accept masks, and float32 decisions that agree bit-for-bit across
// engines while staying inside Float32DecisionBound of the exact values.
func FuzzFusedVsScalar(f *testing.F) {
	for _, seed := range fuzzVsScalarSeeds() {
		f.Add(seed)
	}
	r := rand.New(rand.NewSource(81))
	var models []*Model
	for _, algo := range []Algorithm{OCSVM, SVDD} {
		for _, k := range kernelsUnderTest() {
			m := randomKernelModel(r, algo, k, 1+r.Intn(20), 300, 4+r.Intn(12))
			if err := m.Validate(); err != nil {
				f.Fatal(err)
			}
			models = append(models, m)
		}
	}
	auto64 := NewFusedIndex(models, FusedConfig{}).NewScorer()
	auto32 := NewFusedIndex(models, FusedConfig{Float32: true}).NewScorer()
	port64 := NewFusedIndex(models, FusedConfig{Kernels: KernelsPortable}).NewScorer()
	port32 := NewFusedIndex(models, FusedConfig{Float32: true, Kernels: KernelsPortable}).NewScorer()
	prev := disablePackedKernels
	disablePackedKernels = true
	lanes64 := NewFusedIndex(models, FusedConfig{}).NewScorer()
	lanes32 := NewFusedIndex(models, FusedConfig{Float32: true}).NewScorer()
	disablePackedKernels = prev

	f.Fuzz(func(t *testing.T, raw []byte) {
		x := fuzzProbe(raw)
		d64 := append([]float64(nil), auto64.Decisions(x)...)
		dl64 := append([]float64(nil), lanes64.Decisions(x)...)
		dp64 := append([]float64(nil), port64.Decisions(x)...)
		for i, m := range models {
			want := m.Decision(x)
			if math.Float64bits(d64[i]) != math.Float64bits(want) ||
				math.Float64bits(dl64[i]) != math.Float64bits(want) ||
				math.Float64bits(dp64[i]) != math.Float64bits(want) {
				t.Fatalf("model %d (%v/%v): float64 engines diverge from solo %x: auto %x lanes %x portable %x",
					i, m.Algo, m.Kernel, math.Float64bits(want),
					math.Float64bits(d64[i]), math.Float64bits(dl64[i]), math.Float64bits(dp64[i]))
			}
		}
		m64 := append([]bool(nil), auto64.AcceptMask(x)...)
		ml64 := append([]bool(nil), lanes64.AcceptMask(x)...)
		mp64 := append([]bool(nil), port64.AcceptMask(x)...)
		for i, m := range models {
			want := m.Accept(x)
			if m64[i] != want || ml64[i] != want || mp64[i] != want {
				t.Fatalf("model %d (%v/%v): masks diverge from solo %v: auto %v lanes %v portable %v",
					i, m.Algo, m.Kernel, want, m64[i], ml64[i], mp64[i])
			}
		}
		d32 := append([]float64(nil), auto32.Decisions(x)...)
		dl32 := append([]float64(nil), lanes32.Decisions(x)...)
		dp32 := append([]float64(nil), port32.Decisions(x)...)
		for i, m := range models {
			if math.Float64bits(d32[i]) != math.Float64bits(dp32[i]) ||
				math.Float64bits(dl32[i]) != math.Float64bits(dp32[i]) {
				t.Fatalf("model %d (%v/%v): float32 engines disagree: auto %x lanes %x portable %x",
					i, m.Algo, m.Kernel, math.Float64bits(d32[i]), math.Float64bits(dl32[i]), math.Float64bits(dp32[i]))
			}
			if diff := math.Abs(d32[i] - d64[i]); diff > Float32DecisionBound(m, x) {
				t.Fatalf("model %d (%v/%v): float32 drift %g exceeds bound %g",
					i, m.Algo, m.Kernel, diff, Float32DecisionBound(m, x))
			}
		}
	})
}

// TestRegenerateFusedVsScalarCorpus rewrites testdata/fuzz/FuzzFusedVsScalar
// from fuzzVsScalarSeeds when WTP_REGEN_CORPUS=1, so the checked-in corpus
// never drifts from the seed list. Normally it only verifies the files
// exist.
func TestRegenerateFusedVsScalarCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzFusedVsScalar")
	if os.Getenv("WTP_REGEN_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		old, err := filepath.Glob(filepath.Join(dir, "seed-*"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range old {
			os.Remove(f)
		}
		for i, seed := range fuzzVsScalarSeeds() {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus directory missing (run with WTP_REGEN_CORPUS=1 to create): %v", err)
	}
	if len(entries) < len(fuzzVsScalarSeeds()) {
		t.Fatalf("corpus has %d entries, want at least %d", len(entries), len(fuzzVsScalarSeeds()))
	}
}
