package svm

// CPUID/XGETBV intrinsics (cpu_amd64.s).
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// detectCPUFeatures probes the SIMD capabilities relevant to the lane
// kernels' shapes (8×float64 is one AVX-512 register or two AVX2 ones).
// Vector-register features are only reported when the OS has enabled the
// corresponding state saving (OSXSAVE + XCR0), per the Intel manual's
// detection protocol. Sorted, stable output for logs.
func detectCPUFeatures() []string {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return nil
	}
	_, _, c1, d1 := cpuid(1, 0)
	var feats []string
	avxOS, avx512OS := false, false
	if c1&(1<<27) != 0 { // OSXSAVE
		lo, _ := xgetbv()
		avxOS = lo&0x6 == 0x6      // XMM+YMM state
		avx512OS = lo&0xe6 == 0xe6 // + opmask and ZMM state
	}
	if avxOS && c1&(1<<28) != 0 {
		feats = append(feats, "avx")
	}
	if maxLeaf >= 7 {
		_, b7, _, _ := cpuid(7, 0)
		if avxOS && b7&(1<<5) != 0 {
			feats = append(feats, "avx2")
		}
		if avx512OS && b7&(1<<16) != 0 {
			feats = append(feats, "avx512f")
		}
	}
	if avxOS && c1&(1<<12) != 0 {
		feats = append(feats, "fma")
	}
	if d1&(1<<26) != 0 {
		feats = append(feats, "sse2")
	}
	return feats
}
