package svm

import (
	"encoding/json"
	"math"
	"math/rand"
	"sync"
	"testing"

	"webtxprofile/internal/sparse"
)

// randomSparse generates a window-like sparse vector: nnz non-zeros drawn
// from dim columns.
func randomSparse(r *rand.Rand, dim, nnz int) sparse.Vector {
	dense := make(map[int]float64, nnz)
	for len(dense) < nnz {
		dense[r.Intn(dim)] = 0.1 + r.Float64()
	}
	return sparse.New(dense)
}

// randomLinearModel hand-assembles a structurally valid linear model with
// random support vectors and coefficients. Validate is NOT called; callers
// decide whether to prepare the caches.
func randomLinearModel(r *rand.Rand, algo Algorithm, nsv, dim, nnz int) *Model {
	m := &Model{Algo: algo, Kernel: Linear(), Param: 0.1, TrainSize: nsv}
	for i := 0; i < nsv; i++ {
		m.SVs = append(m.SVs, randomSparse(r, dim, nnz))
		m.Coef = append(m.Coef, 0.01+r.Float64())
	}
	switch algo {
	case OCSVM:
		m.Rho = r.Float64()
	case SVDD:
		m.R2 = 1 + r.Float64()
		m.SumAA = r.Float64()
	}
	return m
}

// TestLinearFastPathMatchesGeneric is the tentpole equivalence check: the
// precomputed-weight-vector decision must agree with the per-SV kernel sum
// within 1e-9 on randomized models of both algorithms.
func TestLinearFastPathMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, algo := range []Algorithm{OCSVM, SVDD} {
		for trial := 0; trial < 20; trial++ {
			nsv := 1 + r.Intn(120)
			m := randomLinearModel(r, algo, nsv, 800, 5+r.Intn(25))
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			if m.w == nil {
				t.Fatal("linear model has no weight vector after Validate")
			}
			for probe := 0; probe < 25; probe++ {
				x := randomSparse(r, 900, 5+r.Intn(25)) // probes exceed the SV column range
				fast, generic := m.Decision(x), m.DecisionGeneric(x)
				if math.Abs(fast-generic) > 1e-9 {
					t.Fatalf("%v nsv=%d: fast %v vs generic %v (diff %g)",
						algo, nsv, fast, generic, math.Abs(fast-generic))
				}
				if m.acceptsValue(fast) != m.acceptsValue(generic) {
					// Possible only within the boundary tolerance; the
					// tolerance absorbs it by construction.
					t.Fatalf("%v: accept flipped at decision %v", algo, fast)
				}
			}
		}
	}
}

// TestTrainedModelUsesFastPath checks that Train populates the weight
// vector and that trained-model decisions agree with the generic path.
func TestTrainedModelUsesFastPath(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := binaryCluster(r, 120, []int{0, 4, 7, 12}, []int{20, 21, 22, 23}, 0.4)
	for _, algo := range []Algorithm{OCSVM, SVDD} {
		m, err := Train(algo, xs, 0.2, TrainConfig{Kernel: Linear()})
		if err != nil {
			t.Fatal(err)
		}
		if m.w == nil {
			t.Fatalf("%v: trained linear model has no weight vector", algo)
		}
		for _, x := range xs[:40] {
			if d := math.Abs(m.Decision(x) - m.DecisionGeneric(x)); d > 1e-9 {
				t.Fatalf("%v: fast/generic diff %g", algo, d)
			}
		}
	}
}

// TestNonLinearModelHasNoWeightVector ensures the fast path stays off for
// kernels where the model does not collapse.
func TestNonLinearModelHasNoWeightVector(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	xs := gaussCluster(r, 40, 6, 0, 1)
	m, err := TrainOCSVM(xs, 0.3, TrainConfig{Kernel: RBF(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if m.w != nil {
		t.Fatal("rbf model has a weight vector")
	}
}

// TestFastPathSurvivesJSONRoundTrip asserts the weight vector is rebuilt
// on unmarshal and produces identical decisions.
func TestFastPathSurvivesJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	m := randomLinearModel(r, OCSVM, 60, 500, 15)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.w == nil {
		t.Fatal("weight vector lost in JSON round trip")
	}
	for i := 0; i < 20; i++ {
		x := randomSparse(r, 500, 15)
		if a, b := m.Decision(x), back.Decision(x); a != b {
			t.Fatalf("decision drift after round trip: %v vs %v", a, b)
		}
	}
}

// TestDecisionConcurrentUnvalidated is the satellite data-race check: a
// hand-assembled model that never called Validate must support concurrent
// Decision calls (run with -race). The seed implementation lazily wrote
// svNorms inside Decision, racing here.
func TestDecisionConcurrentUnvalidated(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	m := randomLinearModel(r, OCSVM, 30, 200, 10) // no Validate: caches unset
	probes := make([]sparse.Vector, 32)
	for i := range probes {
		probes[i] = randomSparse(r, 200, 10)
	}
	want := make([]float64, len(probes))
	for i, x := range probes {
		want[i] = m.DecisionGeneric(x)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, x := range probes {
				if got := m.Decision(x); got != want[i] {
					t.Errorf("concurrent decision %d = %v, want %v", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestScorerMatchesIndividualDecisions verifies the batch scorer against
// per-model Decision/Accept across kernels and algorithms.
func TestScorerMatchesIndividualDecisions(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := binaryCluster(r, 100, []int{0, 4, 7}, []int{20, 21, 22}, 0.4)
	var models []*Model
	for _, k := range kernelsUnderTest() {
		m, err := TrainOCSVM(xs, 0.2, TrainConfig{Kernel: k})
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	sc := NewScorer(models)
	if sc.Len() != len(models) {
		t.Fatalf("scorer len = %d", sc.Len())
	}
	for trial := 0; trial < 30; trial++ {
		x := randomSparse(r, 60, 8)
		dec := sc.Decisions(x)
		for i, m := range models {
			if want := m.Decision(x); dec[i] != want {
				t.Fatalf("model %d (%v): batch %v vs solo %v", i, m.Kernel, dec[i], want)
			}
		}
		mask := sc.AcceptMask(x)
		for i, m := range models {
			if mask[i] != m.Accept(x) {
				t.Fatalf("model %d (%v): accept mismatch", i, m.Kernel)
			}
		}
		if sc.Model(0) != models[0] {
			t.Fatal("Model accessor broken")
		}
	}
}

// TestDecisionBatch verifies the free-function batch API, including buffer
// reuse via out[:0].
func TestDecisionBatch(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	xs := binaryCluster(r, 80, []int{1, 2, 3}, []int{10, 11}, 0.3)
	m1, err := TrainOCSVM(xs, 0.2, TrainConfig{Kernel: Linear()})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainSVDD(xs, 0.5, TrainConfig{Kernel: Linear()})
	if err != nil {
		t.Fatal(err)
	}
	models := []*Model{m1, m2}
	x := randomSparse(r, 40, 6)
	out := DecisionBatch(models, x, nil)
	if len(out) != 2 || out[0] != m1.Decision(x) || out[1] != m2.Decision(x) {
		t.Fatalf("batch = %v", out)
	}
	y := randomSparse(r, 40, 6)
	out2 := DecisionBatch(models, y, out[:0])
	if &out2[0] != &out[0] {
		t.Error("buffer not reused")
	}
	if out2[0] != m1.Decision(y) {
		t.Error("reused-buffer decisions wrong")
	}
}
