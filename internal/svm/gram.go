package svm

import (
	"fmt"

	"webtxprofile/internal/sparse"
)

// Gram is a fully materialized kernel matrix K over a fixed training set.
// K depends only on the kernel and the data — not on ν, C or the
// algorithm — so one Gram serves every cell of a grid-search row: the
// paper's Table III retrains the same training windows 15× per kernel with
// different ν/C values, and sharing the Gram turns 15 kernel-matrix
// computations into one. The SMO solver consumes the rows directly via
// kcol, with the algorithm's Q = qscale·K scale applied inside the solver.
//
// A Gram is immutable after construction and safe for concurrent use by
// multiple trainings.
type Gram struct {
	kernel Kernel
	xs     []sparse.Vector
	rows   [][]float64
	diag   []float64
}

// NewGram computes the full symmetric kernel matrix over xs. Memory is
// 8·n² bytes (one flat backing array) — at the grid's default cap of 600
// training windows that is ~2.9 MB, recouped 15× over per ν/C row.
func NewGram(kernel Kernel, xs []sparse.Vector) (*Gram, error) {
	if err := kernel.Validate(); err != nil {
		return nil, err
	}
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	ns := norms(xs)
	flat := make([]float64, n*n)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = kernel.evalSelf(ns[i])
		rows[i][i] = diag[i]
		for j := i + 1; j < n; j++ {
			v := kernel.evalNorms(xs[i], xs[j], ns[i], ns[j])
			rows[i][j] = v
			rows[j][i] = v
		}
	}
	statKernelEvals.Add(uint64(n) * uint64(n+1) / 2)
	statGramBuilds.Add(1)
	return &Gram{kernel: kernel, xs: xs, rows: rows, diag: diag}, nil
}

// Kernel returns the kernel the matrix was computed with.
func (g *Gram) Kernel() Kernel { return g.kernel }

// Size returns the number of training vectors (the matrix dimension).
func (g *Gram) Size() int { return len(g.xs) }

// column returns row/column i of the symmetric matrix (qProvider).
func (g *Gram) column(i int) []float64 { return g.rows[i] }

// diagonal returns the matrix diagonal (qProvider).
func (g *Gram) diagonal() []float64 { return g.diag }

// DotProducts is the kernel-independent part of a Gram: the symmetric
// dot-product matrix xᵢ·xⱼ plus the squared norms ‖xᵢ‖² over a fixed
// training set. Every kernel of the paper factors through the dot product
// (see the package comment), so one DotProducts serves the linear,
// polynomial, sigmoid *and* RBF rows of a grid search — the per-kernel
// Gram derivation (NewGramFromDots) is a scalar pass that performs no new
// kernel evaluations.
//
// A DotProducts is immutable after construction and safe for concurrent
// use.
type DotProducts struct {
	xs   []sparse.Vector
	rows [][]float64 // symmetric dot matrix, flat-backed
	ns   []float64   // squared norms (the matrix diagonal)
}

// NewDotProducts computes the symmetric dot-product matrix over xs. The
// n(n+1)/2 sparse dot products are the irreducible kernel work and are
// counted as kernel evaluations; deriving a Gram from the result is free.
func NewDotProducts(xs []sparse.Vector) (*DotProducts, error) {
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	ns := norms(xs)
	flat := make([]float64, n*n)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	for i := 0; i < n; i++ {
		rows[i][i] = ns[i] // xᵢ·xᵢ = ‖xᵢ‖²
		for j := i + 1; j < n; j++ {
			v := sparse.Dot(xs[i], xs[j])
			rows[i][j] = v
			rows[j][i] = v
		}
	}
	statKernelEvals.Add(uint64(n) * uint64(n+1) / 2)
	statDotBuilds.Add(1)
	return &DotProducts{xs: xs, rows: rows, ns: ns}, nil
}

// Size returns the number of training vectors (the matrix dimension).
func (d *DotProducts) Size() int { return len(d.xs) }

// NewGramFromDots derives the kernel matrix for one kernel from a shared
// dot-product matrix: K[i][j] = k(dots[i][j], ‖xᵢ‖², ‖xⱼ‖²) via the
// factored kernel form. No sparse dot products are recomputed, so the
// linear/polynomial/RBF/sigmoid rows of a grid-search all amortize one
// NewDotProducts — the counter assertion in the grid tests pins this down.
func NewGramFromDots(d *DotProducts, kernel Kernel) (*Gram, error) {
	if err := kernel.Validate(); err != nil {
		return nil, err
	}
	if d == nil || len(d.xs) == 0 {
		return nil, fmt.Errorf("svm: nil or empty dot-product matrix")
	}
	n := len(d.xs)
	flat := make([]float64, n*n)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = kernel.evalSelf(d.ns[i])
		rows[i][i] = diag[i]
		for j := i + 1; j < n; j++ {
			v := kernel.evalDot(d.rows[i][j], d.ns[i], d.ns[j])
			rows[i][j] = v
			rows[j][i] = v
		}
	}
	statGramBuilds.Add(1)
	return &Gram{kernel: kernel, xs: d.xs, rows: rows, diag: diag}, nil
}

// TrainOCSVMGram is TrainOCSVM evaluated against a precomputed Gram: same
// dual, same solution, no kernel evaluations. cfg.Kernel is ignored — the
// Gram fixes the kernel.
func TrainOCSVMGram(g *Gram, nu float64, cfg TrainConfig) (*Model, error) {
	cfg.Kernel = g.kernel
	return trainOCSVM(g.xs, nu, cfg, g)
}

// TrainSVDDGram is TrainSVDD evaluated against a precomputed Gram.
// cfg.Kernel is ignored — the Gram fixes the kernel.
func TrainSVDDGram(g *Gram, c float64, cfg TrainConfig) (*Model, error) {
	cfg.Kernel = g.kernel
	return trainSVDD(g.xs, c, cfg, g)
}

// TrainGram dispatches on the algorithm like Train, sourcing the kernel
// matrix from the shared Gram.
func TrainGram(algo Algorithm, g *Gram, param float64, cfg TrainConfig) (*Model, error) {
	switch algo {
	case OCSVM:
		return TrainOCSVMGram(g, param, cfg)
	case SVDD:
		return TrainSVDDGram(g, param, cfg)
	default:
		return nil, fmt.Errorf("svm: unknown algorithm %d", int(algo))
	}
}
