package svm

import (
	"fmt"

	"webtxprofile/internal/sparse"
)

// Gram is a fully materialized kernel matrix K over a fixed training set.
// K depends only on the kernel and the data — not on ν, C or the
// algorithm — so one Gram serves every cell of a grid-search row: the
// paper's Table III retrains the same training windows 15× per kernel with
// different ν/C values, and sharing the Gram turns 15 kernel-matrix
// computations into one. The SMO solver consumes the rows directly via
// kcol, with the algorithm's Q = qscale·K scale applied inside the solver.
//
// A Gram is immutable after construction and safe for concurrent use by
// multiple trainings.
type Gram struct {
	kernel Kernel
	xs     []sparse.Vector
	rows   [][]float64
	diag   []float64
}

// NewGram computes the full symmetric kernel matrix over xs. Memory is
// 8·n² bytes (one flat backing array) — at the grid's default cap of 600
// training windows that is ~2.9 MB, recouped 15× over per ν/C row.
func NewGram(kernel Kernel, xs []sparse.Vector) (*Gram, error) {
	if err := kernel.Validate(); err != nil {
		return nil, err
	}
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	ns := norms(xs)
	flat := make([]float64, n*n)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = kernel.evalSelf(ns[i])
		rows[i][i] = diag[i]
		for j := i + 1; j < n; j++ {
			v := kernel.evalNorms(xs[i], xs[j], ns[i], ns[j])
			rows[i][j] = v
			rows[j][i] = v
		}
	}
	statKernelEvals.Add(uint64(n) * uint64(n+1) / 2)
	statGramBuilds.Add(1)
	return &Gram{kernel: kernel, xs: xs, rows: rows, diag: diag}, nil
}

// Kernel returns the kernel the matrix was computed with.
func (g *Gram) Kernel() Kernel { return g.kernel }

// Size returns the number of training vectors (the matrix dimension).
func (g *Gram) Size() int { return len(g.xs) }

// column returns row/column i of the symmetric matrix (qProvider).
func (g *Gram) column(i int) []float64 { return g.rows[i] }

// diagonal returns the matrix diagonal (qProvider).
func (g *Gram) diagonal() []float64 { return g.diag }

// TrainOCSVMGram is TrainOCSVM evaluated against a precomputed Gram: same
// dual, same solution, no kernel evaluations. cfg.Kernel is ignored — the
// Gram fixes the kernel.
func TrainOCSVMGram(g *Gram, nu float64, cfg TrainConfig) (*Model, error) {
	cfg.Kernel = g.kernel
	return trainOCSVM(g.xs, nu, cfg, g)
}

// TrainSVDDGram is TrainSVDD evaluated against a precomputed Gram.
// cfg.Kernel is ignored — the Gram fixes the kernel.
func TrainSVDDGram(g *Gram, c float64, cfg TrainConfig) (*Model, error) {
	cfg.Kernel = g.kernel
	return trainSVDD(g.xs, c, cfg, g)
}

// TrainGram dispatches on the algorithm like Train, sourcing the kernel
// matrix from the shared Gram.
func TrainGram(algo Algorithm, g *Gram, param float64, cfg TrainConfig) (*Model, error) {
	switch algo {
	case OCSVM:
		return TrainOCSVMGram(g, param, cfg)
	case SVDD:
		return TrainSVDDGram(g, param, cfg)
	default:
		return nil, fmt.Errorf("svm: unknown algorithm %d", int(algo))
	}
}
