// Package svm implements the two one-class classifiers the paper uses to
// profile users (Sect. II): the ν-one-class SVM of Schölkopf et al. and the
// Support Vector Data Description (SVDD) of Tax & Duin. Both duals are
// solved from scratch with an SMO solver equivalent to LIBSVM's (the
// paper's reference [1]), supporting the paper's four kernels: linear,
// polynomial, RBF and sigmoid.
//
// # Dot-product factoring
//
// The entire kernel family factors through the dot product x·y: linear
// (k = x·y) and sigmoid (k = tanh(γ·x·y+c₀)) use it directly, polynomial
// through (γ·x·y+c₀)^d, and RBF through the norm expansion
// ‖x−y‖² = ‖x‖²+‖y‖²−2x·y, which reduces the Gaussian to a dot product
// once the support-vector norms ‖xᵢ‖² are cached — this is why even the
// "irreducible" RBF qualifies for the fast path. Decision evaluation
// therefore never needs a per-support-vector sparse-sparse merge join:
// linear models collapse the whole sum into a precomputed dense weight
// vector w = Σᵢ αᵢxᵢ, and every other kernel uses an inverted
// support-vector index (feature → (sv, value) postings) that accumulates
// all SV dot products in one pass over the window's ~20 non-zeros, after
// which a tight scalar loop applies the kernel function. The same
// factoring serves training: a Gram matrix depends only on the kernel and
// the data, so grid searches share one Gram across every ν/C cell of a
// row (see Gram and TrainGram) — and one level further down, the
// dot-product matrix depends only on the data, so all kernel rows of a
// training set derive their Grams from a single DotProducts
// (NewGramFromDots) at no extra kernel evaluations.
//
// # Fused population index
//
// Scoring one window against a whole population of user models repeats
// the same walk over the window's non-zeros U times. FusedIndex merges
// every model's postings — linear weight entries and support-vector
// entries, keyed by feature — into one shared immutable structure, so a
// single pass accumulates all models' dot products (Scorer.Decisions,
// Scorer.AcceptMask). On top of the shared accumulation, AcceptMask runs
// a layered admissible screen: an O(1) Cauchy–Schwarz bound from cached
// norm extrema, then an O(#SVs) transcendental-free bound on the kernel
// sum read from the accumulated dots (per support vector for RBF, over
// the dot-product range for polynomial/sigmoid). A model is skipped only
// when its decision value provably falls below the accept tolerance, so
// the mask is identical to calling Model.Accept per model; screening
// effectiveness is observable via KernelStats (PostingsVisited,
// ScreenedModels, FusedDecisions). FusedConfig.Float32 stores postings
// and accumulators in float32 — half the memory and often faster — with
// the worst-case deviation from the exact float64 decision certified by
// Float32DecisionBound. A FusedIndex is safe for concurrent use; each
// goroutine takes its own Scorer for scratch.
//
// # Blocked postings layout and kernel engines
//
// The fused postings are stored cache-blocked and lane-padded: ordinals
// are partitioned into power-of-two accumulator blocks (sized adaptively
// so per-group posting runs stay long enough to keep the hardware
// prefetcher fed — see pickBlockShift), postings are grouped by
// (block, column), and every group is zero-padded to whole fixed-width
// lanes (8 float64 or 16 float32 values — one 64-byte line each). Pads
// target a dedicated spare accumulator cell, so kernels process whole
// lanes with no remainder handling and the scatter of a lane never
// aliases a real ordinal. Three interchangeable engines consume this one
// layout (FusedConfig.Kernels): packed AVX-512 assembly
// (gather–multiply–add–scatter per lane, plus a packed table-driven RBF
// screening-bound reduction), straight-line Go lane kernels, and portable
// per-posting reference loops. Engine selection never changes results:
// blocks partition ordinals, each (column, accumulator) pair carries at
// most one posting, and all engines visit groups in one fixed order with
// separately rounded multiply and add (the assembly deliberately avoids
// FMA), so float64 — and float32 — decisions are bit-identical across
// engines, per-model paths, and CPUs; only screening *effort* may differ,
// never a mask. The per-model epilogue passes over contiguous SV ranges
// (kernel sums, screen bounds, dot ranges) live in fusedkernels.go, which
// CI keeps free of bounds checks in inner loops; index build cost and
// lane-padding overhead are observable via KernelStats
// (IndexBuild*, LanePadWaste, IndexBytes) and FusedIndex.Footprint.
package svm

import (
	"fmt"
	"math"

	"webtxprofile/internal/sparse"
)

// KernelKind enumerates the kernel families from Table III of the paper.
type KernelKind int

// Kernel kinds. The zero value is invalid so that forgotten configuration
// fails loudly.
const (
	KernelLinear KernelKind = iota + 1
	KernelPoly
	KernelRBF
	KernelSigmoid
)

var kernelNames = map[KernelKind]string{
	KernelLinear:  "linear",
	KernelPoly:    "polynomial",
	KernelRBF:     "rbf",
	KernelSigmoid: "sigmoid",
}

// String returns the kernel family name.
func (k KernelKind) String() string {
	if s, ok := kernelNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

// ParseKernelKind converts a kernel family name back into a KernelKind.
func ParseKernelKind(s string) (KernelKind, error) {
	for k, name := range kernelNames {
		if s == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("svm: unknown kernel %q", s)
}

// AllKernels lists the kernel kinds in Table III column order.
var AllKernels = []KernelKind{KernelLinear, KernelPoly, KernelRBF, KernelSigmoid}

// Kernel is a parameterized kernel function:
//
//	linear:     k(x,y) = x·y
//	polynomial: k(x,y) = (γ·x·y + c₀)^d
//	rbf:        k(x,y) = exp(-γ·‖x−y‖²)   (the paper's e^{−‖x−y‖²/C} with γ=1/C)
//	sigmoid:    k(x,y) = tanh(γ·x·y + c₀)
type Kernel struct {
	Kind   KernelKind `json:"kind"`
	Gamma  float64    `json:"gamma,omitempty"`
	Coef0  float64    `json:"coef0,omitempty"`
	Degree int        `json:"degree,omitempty"`
}

// Linear returns the linear kernel.
func Linear() Kernel { return Kernel{Kind: KernelLinear} }

// Poly returns a polynomial kernel.
func Poly(gamma, coef0 float64, degree int) Kernel {
	return Kernel{Kind: KernelPoly, Gamma: gamma, Coef0: coef0, Degree: degree}
}

// RBF returns a Gaussian kernel with the given γ.
func RBF(gamma float64) Kernel { return Kernel{Kind: KernelRBF, Gamma: gamma} }

// Sigmoid returns a sigmoid kernel.
func Sigmoid(gamma, coef0 float64) Kernel {
	return Kernel{Kind: KernelSigmoid, Gamma: gamma, Coef0: coef0}
}

// Validate checks parameter sanity for the kernel family.
func (k Kernel) Validate() error {
	switch k.Kind {
	case KernelLinear:
	case KernelPoly:
		if k.Gamma <= 0 {
			return fmt.Errorf("svm: polynomial kernel needs gamma > 0, got %v", k.Gamma)
		}
		if k.Degree < 1 {
			return fmt.Errorf("svm: polynomial kernel needs degree >= 1, got %d", k.Degree)
		}
	case KernelRBF:
		if k.Gamma <= 0 {
			return fmt.Errorf("svm: rbf kernel needs gamma > 0, got %v", k.Gamma)
		}
	case KernelSigmoid:
		if k.Gamma <= 0 {
			return fmt.Errorf("svm: sigmoid kernel needs gamma > 0, got %v", k.Gamma)
		}
	default:
		return fmt.Errorf("svm: unknown kernel kind %d", int(k.Kind))
	}
	return nil
}

// String renders the kernel with its parameters.
func (k Kernel) String() string {
	switch k.Kind {
	case KernelLinear:
		return "linear"
	case KernelPoly:
		return fmt.Sprintf("polynomial(γ=%g,c0=%g,d=%d)", k.Gamma, k.Coef0, k.Degree)
	case KernelRBF:
		return fmt.Sprintf("rbf(γ=%g)", k.Gamma)
	case KernelSigmoid:
		return fmt.Sprintf("sigmoid(γ=%g,c0=%g)", k.Gamma, k.Coef0)
	default:
		return k.Kind.String()
	}
}

// Eval computes k(x, y).
func (k Kernel) Eval(x, y sparse.Vector) float64 {
	switch k.Kind {
	case KernelLinear:
		return sparse.Dot(x, y)
	case KernelPoly:
		return ipow(k.Gamma*sparse.Dot(x, y)+k.Coef0, k.Degree)
	case KernelRBF:
		return math.Exp(-k.Gamma * sparse.SqDist(x, y))
	case KernelSigmoid:
		return math.Tanh(k.Gamma*sparse.Dot(x, y) + k.Coef0)
	default:
		panic("svm: Eval on invalid kernel; call Validate first")
	}
}

// evalNorms computes k(x, y) reusing precomputed squared norms, which turns
// the RBF distance into dot products (‖x−y‖² = ‖x‖²+‖y‖²−2x·y).
func (k Kernel) evalNorms(x, y sparse.Vector, nx, ny float64) float64 {
	return k.evalDot(sparse.Dot(x, y), nx, ny)
}

// evalDot computes k(x, y) from the already-computed dot product x·y and
// the squared norms — the factored form every kernel family of the paper
// admits (linear and sigmoid use the dot product directly, polynomial
// through (γ·x·y+c₀)^d, RBF through ‖x−y‖² = ‖x‖²+‖y‖²−2x·y). This is what
// lets the inverted support-vector index batch all dot products first and
// apply the kernel in a scalar pass.
func (k Kernel) evalDot(dot, nx, ny float64) float64 {
	switch k.Kind {
	case KernelLinear:
		return dot
	case KernelPoly:
		return ipow(k.Gamma*dot+k.Coef0, k.Degree)
	case KernelRBF:
		d2 := nx + ny - 2*dot
		if d2 < 0 {
			d2 = 0
		}
		return math.Exp(-k.Gamma * d2)
	case KernelSigmoid:
		return math.Tanh(k.Gamma*dot + k.Coef0)
	default:
		panic("svm: evalDot on invalid kernel; call Validate first")
	}
}

// evalSelf computes k(x, x) from ‖x‖² alone (x·x = ‖x‖², so the RBF
// distance is zero and the other kernels need only the norm).
func (k Kernel) evalSelf(nx float64) float64 {
	switch k.Kind {
	case KernelLinear:
		return nx
	case KernelPoly:
		return ipow(k.Gamma*nx+k.Coef0, k.Degree)
	case KernelRBF:
		return 1
	case KernelSigmoid:
		return math.Tanh(k.Gamma*nx + k.Coef0)
	default:
		panic("svm: evalSelf on invalid kernel; call Validate first")
	}
}

// ipow computes base^exp for small positive integer exponents without the
// math.Pow overhead.
func ipow(base float64, exp int) float64 {
	result := 1.0
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}

// norms precomputes ‖x‖² for a set of vectors.
func norms(xs []sparse.Vector) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		out[i] = xs[i].NormSq()
	}
	return out
}
