package svm

import "sync/atomic"

// KernelStats is a snapshot of the package-wide kernel-matrix work
// counters. They quantify the training cost structure the grid search
// optimizes away: KernelEvals is the number of k(xᵢ,xⱼ) evaluations
// performed while materializing kernel columns (the dominant training
// cost), CacheHits/CacheMisses count columnCache column lookups, and
// GramBuilds counts shared Gram constructions. Counters are cumulative
// and process-wide; benchmarks snapshot before/after (or Reset) to
// attribute work. DotBuilds counts shared dot-product matrix
// constructions (NewDotProducts), the kernel-independent work several
// Gram derivations amortize.
type KernelStats struct {
	KernelEvals uint64
	CacheHits   uint64
	CacheMisses uint64
	GramBuilds  uint64
	DotBuilds   uint64
}

var (
	statKernelEvals atomic.Uint64
	statCacheHits   atomic.Uint64
	statCacheMisses atomic.Uint64
	statGramBuilds  atomic.Uint64
	statDotBuilds   atomic.Uint64
)

// ReadKernelStats returns the cumulative counters. Safe for concurrent use
// with ongoing training; the fields are read independently, so a snapshot
// taken mid-training is approximate across fields but each field is exact.
func ReadKernelStats() KernelStats {
	return KernelStats{
		KernelEvals: statKernelEvals.Load(),
		CacheHits:   statCacheHits.Load(),
		CacheMisses: statCacheMisses.Load(),
		GramBuilds:  statGramBuilds.Load(),
		DotBuilds:   statDotBuilds.Load(),
	}
}

// ResetKernelStats zeroes the counters, isolating a measurement window in
// tests and benchmarks.
func ResetKernelStats() {
	statKernelEvals.Store(0)
	statCacheHits.Store(0)
	statCacheMisses.Store(0)
	statGramBuilds.Store(0)
	statDotBuilds.Store(0)
}

// Sub returns the per-window delta between two cumulative snapshots.
func (s KernelStats) Sub(prev KernelStats) KernelStats {
	return KernelStats{
		KernelEvals: s.KernelEvals - prev.KernelEvals,
		CacheHits:   s.CacheHits - prev.CacheHits,
		CacheMisses: s.CacheMisses - prev.CacheMisses,
		GramBuilds:  s.GramBuilds - prev.GramBuilds,
		DotBuilds:   s.DotBuilds - prev.DotBuilds,
	}
}
