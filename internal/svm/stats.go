package svm

import "sync/atomic"

// KernelStats is a snapshot of the package-wide kernel-matrix work
// counters. They quantify the training cost structure the grid search
// optimizes away: KernelEvals is the number of k(xᵢ,xⱼ) evaluations
// performed while materializing kernel columns (the dominant training
// cost), CacheHits/CacheMisses count columnCache column lookups, and
// GramBuilds counts shared Gram constructions. Counters are cumulative
// and process-wide; benchmarks snapshot before/after (or Reset) to
// attribute work. DotBuilds counts shared dot-product matrix
// constructions (NewDotProducts), the kernel-independent work several
// Gram derivations amortize.
//
// The fused-scorer counters make the population-scale decision path
// observable: PostingsVisited is the postings touched by fused
// accumulation passes, ScreenedModels counts models whose scalar kernel
// loop was skipped because the decision screen proved rejection
// (Scorer.AcceptMask), and FusedDecisions/FallbackDecisions split
// per-window model decisions between the fused index and the per-model
// fallback of unprepared models. PostingsVisited includes the blocked
// layout's lane-pad slots (they ride in the same lanes as real postings).
//
// LanePadWaste and IndexBytes are gauges, not counters: they reflect the
// most recently built FusedIndex's memory footprint (pad postings added
// to fill out lanes, and total resident index bytes — see
// FusedIndex.Footprint for the per-index view), so long-running processes
// can observe index memory without holding the index.
type KernelStats struct {
	KernelEvals uint64
	CacheHits   uint64
	CacheMisses uint64
	GramBuilds  uint64
	DotBuilds   uint64

	PostingsVisited   uint64
	ScreenedModels    uint64
	FusedDecisions    uint64
	FallbackDecisions uint64

	LanePadWaste uint64
	IndexBytes   uint64
}

var (
	statKernelEvals atomic.Uint64
	statCacheHits   atomic.Uint64
	statCacheMisses atomic.Uint64
	statGramBuilds  atomic.Uint64
	statDotBuilds   atomic.Uint64

	statPostingsVisited   atomic.Uint64
	statScreenedModels    atomic.Uint64
	statFusedDecisions    atomic.Uint64
	statFallbackDecisions atomic.Uint64

	statLanePadWaste atomic.Uint64
	statIndexBytes   atomic.Uint64
)

// recordIndexBuild stores the footprint gauges of the index just built.
func recordIndexBuild(f IndexFootprint) {
	statLanePadWaste.Store(uint64(f.LanePadWaste))
	statIndexBytes.Store(uint64(f.IndexBytes))
}

// recordFusedWindow batches the fused scorer's counter updates into at
// most four atomic adds per scored window (not per model or posting),
// keeping the accounting invisible next to the scoring work itself.
func recordFusedWindow(visited, screened, fused, fallback int) {
	if visited > 0 {
		statPostingsVisited.Add(uint64(visited))
	}
	if screened > 0 {
		statScreenedModels.Add(uint64(screened))
	}
	if fused > 0 {
		statFusedDecisions.Add(uint64(fused))
	}
	if fallback > 0 {
		statFallbackDecisions.Add(uint64(fallback))
	}
}

// ReadKernelStats returns the cumulative counters. Safe for concurrent use
// with ongoing training; the fields are read independently, so a snapshot
// taken mid-training is approximate across fields but each field is exact.
func ReadKernelStats() KernelStats {
	return KernelStats{
		KernelEvals: statKernelEvals.Load(),
		CacheHits:   statCacheHits.Load(),
		CacheMisses: statCacheMisses.Load(),
		GramBuilds:  statGramBuilds.Load(),
		DotBuilds:   statDotBuilds.Load(),

		PostingsVisited:   statPostingsVisited.Load(),
		ScreenedModels:    statScreenedModels.Load(),
		FusedDecisions:    statFusedDecisions.Load(),
		FallbackDecisions: statFallbackDecisions.Load(),

		LanePadWaste: statLanePadWaste.Load(),
		IndexBytes:   statIndexBytes.Load(),
	}
}

// ResetKernelStats zeroes the counters, isolating a measurement window in
// tests and benchmarks.
func ResetKernelStats() {
	statKernelEvals.Store(0)
	statCacheHits.Store(0)
	statCacheMisses.Store(0)
	statGramBuilds.Store(0)
	statDotBuilds.Store(0)

	statPostingsVisited.Store(0)
	statScreenedModels.Store(0)
	statFusedDecisions.Store(0)
	statFallbackDecisions.Store(0)

	statLanePadWaste.Store(0)
	statIndexBytes.Store(0)
}

// Sub returns the per-window delta between two cumulative snapshots. The
// footprint gauges (LanePadWaste, IndexBytes) are not deltas; the newer
// snapshot's values carry through unchanged.
func (s KernelStats) Sub(prev KernelStats) KernelStats {
	return KernelStats{
		KernelEvals: s.KernelEvals - prev.KernelEvals,
		CacheHits:   s.CacheHits - prev.CacheHits,
		CacheMisses: s.CacheMisses - prev.CacheMisses,
		GramBuilds:  s.GramBuilds - prev.GramBuilds,
		DotBuilds:   s.DotBuilds - prev.DotBuilds,

		PostingsVisited:   s.PostingsVisited - prev.PostingsVisited,
		ScreenedModels:    s.ScreenedModels - prev.ScreenedModels,
		FusedDecisions:    s.FusedDecisions - prev.FusedDecisions,
		FallbackDecisions: s.FallbackDecisions - prev.FallbackDecisions,

		LanePadWaste: s.LanePadWaste,
		IndexBytes:   s.IndexBytes,
	}
}
