package svm

import (
	"math"
	"math/rand"
	"testing"
)

// TestGramMatchesEval checks the materialized matrix entry-by-entry
// against direct kernel evaluation.
func TestGramMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	xs := gaussCluster(r, 25, 5, 0, 1)
	for _, kernel := range kernelsUnderTest() {
		g, err := NewGram(kernel, xs)
		if err != nil {
			t.Fatal(err)
		}
		if g.Size() != len(xs) || g.Kernel() != kernel {
			t.Fatalf("%v: size/kernel accessors wrong", kernel)
		}
		for i := range xs {
			col := g.column(i)
			for j := range xs {
				want := kernel.Eval(xs[i], xs[j])
				if math.Abs(col[j]-want) > 1e-12 {
					t.Fatalf("%v: K[%d][%d] = %v, want %v", kernel, i, j, col[j], want)
				}
			}
			if math.Abs(g.diagonal()[i]-kernel.Eval(xs[i], xs[i])) > 1e-12 {
				t.Fatalf("%v: diag[%d] mismatch", kernel, i)
			}
		}
	}
}

// TestTrainGramMatchesTrain is the grid-sharing correctness property: a
// model trained against a shared Gram must be identical to one trained
// with the lazy column cache — same support vectors, coefficients,
// thresholds and decisions — because both feed the solver the same raw
// kernel matrix.
func TestTrainGramMatchesTrain(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	xs := binaryCluster(r, 100, []int{0, 4, 7}, []int{20, 21, 22}, 0.4)
	params := []float64{0.999, 0.5, 0.1, 0.01}
	for _, kernel := range kernelsUnderTest() {
		g, err := NewGram(kernel, xs)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Algorithm{OCSVM, SVDD} {
			for _, param := range params {
				cfg := TrainConfig{Kernel: kernel}
				want, err := Train(algo, xs, param, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := TrainGram(algo, g, param, TrainConfig{})
				if err != nil {
					t.Fatal(err)
				}
				if got.NumSVs() != want.NumSVs() {
					t.Fatalf("%v %v param=%g: %d SVs via Gram, %d via cache",
						kernel, algo, param, got.NumSVs(), want.NumSVs())
				}
				for i := range want.Coef {
					if got.Coef[i] != want.Coef[i] {
						t.Fatalf("%v %v param=%g: coef[%d] %v != %v",
							kernel, algo, param, i, got.Coef[i], want.Coef[i])
					}
				}
				if got.Rho != want.Rho || got.R2 != want.R2 || got.SumAA != want.SumAA {
					t.Fatalf("%v %v param=%g: thresholds differ (ρ %v/%v, R² %v/%v)",
						kernel, algo, param, got.Rho, want.Rho, got.R2, want.R2)
				}
				for trial := 0; trial < 10; trial++ {
					x := randomSparse(r, 60, 8)
					if a, b := got.Decision(x), want.Decision(x); a != b {
						t.Fatalf("%v %v param=%g: decisions differ: %v vs %v",
							kernel, algo, param, a, b)
					}
				}
			}
		}
	}
}

// TestTrainGramReusesKernelEvals verifies the point of the Gram: training
// many parameter cells against one Gram performs the kernel evaluations
// once, while per-cell training re-evaluates per cell.
func TestTrainGramReusesKernelEvals(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	xs := binaryCluster(r, 60, []int{0, 4, 7}, []int{20, 21, 22}, 0.4)
	params := []float64{0.999, 0.9, 0.7, 0.5, 0.3, 0.1, 0.05, 0.01}
	n := uint64(len(xs))

	before := ReadKernelStats()
	g, err := NewGram(RBF(0.1), xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range params {
		if _, err := TrainOCSVMGram(g, p, TrainConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	gram := ReadKernelStats().Sub(before)
	if want := n * (n + 1) / 2; gram.KernelEvals != want {
		t.Errorf("gram path kernel evals = %d, want %d (one triangular build)",
			gram.KernelEvals, want)
	}
	if gram.GramBuilds != 1 {
		t.Errorf("gram builds = %d, want 1", gram.GramBuilds)
	}

	before = ReadKernelStats()
	for _, p := range params {
		if _, err := TrainOCSVM(xs, p, TrainConfig{Kernel: RBF(0.1)}); err != nil {
			t.Fatal(err)
		}
	}
	cell := ReadKernelStats().Sub(before)
	if cell.KernelEvals <= gram.KernelEvals {
		t.Errorf("per-cell path used %d kernel evals, gram path %d — sharing won nothing",
			cell.KernelEvals, gram.KernelEvals)
	}
}

// TestGramFromDotsMatchesNewGram checks that a Gram derived from a shared
// dot-product matrix is entry-identical to one computed directly — for all
// four kernel families, since every one factors through x·y (RBF via the
// cached norms).
func TestGramFromDotsMatchesNewGram(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	xs := gaussCluster(r, 30, 6, 0, 1)
	dots, err := NewDotProducts(xs)
	if err != nil {
		t.Fatal(err)
	}
	if dots.Size() != len(xs) {
		t.Fatalf("dots size = %d, want %d", dots.Size(), len(xs))
	}
	for _, kernel := range kernelsUnderTest() {
		want, err := NewGram(kernel, xs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewGramFromDots(dots, kernel)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kernel() != kernel || got.Size() != want.Size() {
			t.Fatalf("%v: kernel/size accessors wrong", kernel)
		}
		for i := range xs {
			wc, gc := want.column(i), got.column(i)
			for j := range xs {
				if wc[j] != gc[j] {
					t.Fatalf("%v: K[%d][%d] = %v from dots, %v direct", kernel, i, j, gc[j], wc[j])
				}
			}
			if want.diagonal()[i] != got.diagonal()[i] {
				t.Fatalf("%v: diag[%d] mismatch", kernel, i)
			}
		}
	}
}

// TestDotProductsShareKernelEvals is the counter assertion for cross-kernel
// sharing: deriving one Gram per kernel family from a single DotProducts
// must cost exactly one triangular pass of kernel evaluations, while
// building the four Grams independently pays the pass four times.
func TestDotProductsShareKernelEvals(t *testing.T) {
	r := rand.New(rand.NewSource(36))
	xs := gaussCluster(r, 40, 6, 0, 1)
	kernels := kernelsUnderTest()
	n := uint64(len(xs))

	before := ReadKernelStats()
	dots, err := NewDotProducts(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range kernels {
		if _, err := NewGramFromDots(dots, k); err != nil {
			t.Fatal(err)
		}
	}
	shared := ReadKernelStats().Sub(before)
	if want := n * (n + 1) / 2; shared.KernelEvals != want {
		t.Errorf("shared path kernel evals = %d, want %d (one dot-matrix build)",
			shared.KernelEvals, want)
	}
	if shared.DotBuilds != 1 || shared.GramBuilds != uint64(len(kernels)) {
		t.Errorf("shared path: dot builds = %d, gram builds = %d, want 1 and %d",
			shared.DotBuilds, shared.GramBuilds, len(kernels))
	}

	before = ReadKernelStats()
	for _, k := range kernels {
		if _, err := NewGram(k, xs); err != nil {
			t.Fatal(err)
		}
	}
	direct := ReadKernelStats().Sub(before)
	if direct.KernelEvals != uint64(len(kernels))*shared.KernelEvals {
		t.Errorf("direct path kernel evals = %d, want %d× the shared path's %d",
			direct.KernelEvals, len(kernels), shared.KernelEvals)
	}
}

// TestNewGramErrors covers the validation paths.
func TestNewGramErrors(t *testing.T) {
	if _, err := NewGram(Kernel{Kind: KernelRBF, Gamma: -1}, gaussCluster(rand.New(rand.NewSource(34)), 5, 3, 0, 1)); err == nil {
		t.Error("invalid kernel accepted")
	}
	if _, err := NewGram(Linear(), nil); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := TrainGram(0, nil, 0.5, TrainConfig{}); err == nil {
		t.Error("invalid algorithm accepted")
	}
	if _, err := NewDotProducts(nil); err == nil {
		t.Error("empty dot-product set accepted")
	}
	if _, err := NewGramFromDots(nil, Linear()); err == nil {
		t.Error("nil dot-product matrix accepted")
	}
	dots, err := NewDotProducts(gaussCluster(rand.New(rand.NewSource(37)), 5, 3, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGramFromDots(dots, Kernel{Kind: KernelRBF, Gamma: -1}); err == nil {
		t.Error("invalid kernel accepted for dots-derived Gram")
	}
}
