//go:build !amd64

package svm

// detectCPUFeatures reports no SIMD capabilities off amd64; the lane
// kernels are portable Go and run everywhere regardless.
func detectCPUFeatures() []string { return nil }
