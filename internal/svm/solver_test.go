package svm

import (
	"math"
	"math/rand"
	"testing"
)

// denseProblem wraps an explicit Q matrix as an smoProblem.
func denseProblem(q [][]float64, p []float64, u float64) *smoProblem {
	n := len(q)
	diag := make([]float64, n)
	for i := range q {
		diag[i] = q[i][i]
	}
	return &smoProblem{
		n:      n,
		kcol:   func(i int) []float64 { return column(q, i) },
		kdiag:  diag,
		qscale: 1,
		p:      p,
		u:      u,
		eps:    1e-9,
	}
}

func column(q [][]float64, i int) []float64 {
	n := len(q)
	col := make([]float64, n)
	for t := 0; t < n; t++ {
		col[t] = q[t][i]
	}
	return col
}

func TestSolverTwoVariableExact(t *testing.T) {
	// min ½(α1² + 2α2²) s.t. α1+α2 = 1, 0 ≤ α ≤ 1.
	// Stationarity: α1 = 2α2 ⇒ α = (2/3, 1/3), objective 1/3, b = 2/3.
	q := [][]float64{{1, 0}, {0, 2}}
	res, err := denseProblem(q, nil, 1).solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.converged {
		t.Fatal("did not converge")
	}
	if math.Abs(res.alpha[0]-2.0/3) > 1e-6 || math.Abs(res.alpha[1]-1.0/3) > 1e-6 {
		t.Errorf("alpha = %v, want (2/3, 1/3)", res.alpha)
	}
	// ½αᵀQα = ½(4/9·1 + 1/9·2) = 1/3.
	if math.Abs(res.obj-1.0/3) > 1e-6 {
		t.Errorf("objective = %v, want %v", res.obj, 1.0/3)
	}
	if math.Abs(res.b-2.0/3) > 1e-6 {
		t.Errorf("b = %v, want 2/3", res.b)
	}
}

func TestSolverThreeVariableInterior(t *testing.T) {
	// min ½(α1² + α2² + 4α3²) s.t. Σα = 1, 0 ≤ α ≤ 0.5.
	// Stationarity: α1 = α2 = b, 4α3 = b ⇒ α = (4/9, 4/9, 1/9), b = 4/9.
	q := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 4}}
	res, err := denseProblem(q, nil, 0.5).solve()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4.0 / 9, 4.0 / 9, 1.0 / 9}
	for i := range want {
		if math.Abs(res.alpha[i]-want[i]) > 1e-6 {
			t.Fatalf("alpha = %v, want %v", res.alpha, want)
		}
	}
	if math.Abs(res.b-4.0/9) > 1e-6 {
		t.Errorf("b = %v, want 4/9", res.b)
	}
	if res.freeSVs != 3 {
		t.Errorf("freeSVs = %d, want 3", res.freeSVs)
	}
}

func TestSolverBoxBinds(t *testing.T) {
	// Same objective but U = 0.4: α1 = α2 want 4/9 > 0.4, so both clamp
	// to the bound and α3 takes the remainder 0.2.
	q := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 4}}
	res, err := denseProblem(q, nil, 0.4).solve()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.4, 0.4, 0.2}
	for i := range want {
		if math.Abs(res.alpha[i]-want[i]) > 1e-6 {
			t.Fatalf("alpha = %v, want %v", res.alpha, want)
		}
	}
	// Free variable α3 fixes b = 4·0.2 = 0.8.
	if math.Abs(res.b-0.8) > 1e-6 {
		t.Errorf("b = %v, want 0.8", res.b)
	}
}

func TestSolverWithLinearTerm(t *testing.T) {
	// min ½(α1² + α2²) − α2 s.t. Σα = 1, 0 ≤ α ≤ 1.
	// Stationarity: α1 = b, α2 − 1 = b ⇒ α = (0, 1) with the box binding
	// at the lower end for α1: check KKT instead of interior solution.
	// Interior candidate: α1 = b, α2 = b + 1, sum = 2b + 1 = 1 ⇒ b = 0,
	// α = (0, 1): feasible with α1 at lower bound, α2 at upper bound.
	q := [][]float64{{1, 0}, {0, 1}}
	p := []float64{0, -1}
	res, err := denseProblem(q, p, 1).solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.alpha[0]-0) > 1e-6 || math.Abs(res.alpha[1]-1) > 1e-6 {
		t.Errorf("alpha = %v, want (0, 1)", res.alpha)
	}
	// Objective ½·1 − 1 = −0.5.
	if math.Abs(res.obj-(-0.5)) > 1e-6 {
		t.Errorf("objective = %v, want -0.5", res.obj)
	}
}

func TestSolverInfeasibleBox(t *testing.T) {
	q := [][]float64{{1, 0}, {0, 1}}
	pr := denseProblem(q, nil, 0.4) // 2 × 0.4 < 1
	if _, err := pr.solve(); err == nil {
		t.Error("infeasible box accepted")
	}
}

func TestSolverEmpty(t *testing.T) {
	pr := &smoProblem{n: 0, u: 1}
	if _, err := pr.solve(); err == nil {
		t.Error("empty problem accepted")
	}
}

func TestSolverMaxIterReported(t *testing.T) {
	// A hard random PSD problem with a 1-iteration budget must report
	// non-convergence but still return a feasible α.
	r := rand.New(rand.NewSource(1))
	n := 20
	q := randomPSD(r, n)
	pr := denseProblem(q, nil, 0.2)
	pr.maxItr = 1
	res, err := pr.solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.converged {
		t.Error("claimed convergence after 1 iteration")
	}
	var sum float64
	for _, a := range res.alpha {
		if a < -1e-12 || a > 0.2+1e-12 {
			t.Errorf("alpha out of box: %v", a)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σα = %v", sum)
	}
}

func TestSolverMatchesQuadraticLowerBound(t *testing.T) {
	// On random PSD problems the solver's objective must beat (or match)
	// the uniform feasible point — a weak but fully general optimality
	// smoke test — and satisfy the KKT tolerance.
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 5 + r.Intn(20)
		q := randomPSD(r, n)
		u := 2.0 / float64(n)
		pr := denseProblem(q, nil, u)
		res, err := pr.solve()
		if err != nil {
			t.Fatal(err)
		}
		uniform := make([]float64, n)
		for i := range uniform {
			uniform[i] = 1.0 / float64(n)
		}
		if res.obj > quadObj(q, uniform)+1e-9 {
			t.Errorf("trial %d: solver objective %v worse than uniform %v",
				trial, res.obj, quadObj(q, uniform))
		}
		checkSolverKKT(t, q, res, u)
	}
}

// quadObj computes ½αᵀQα.
func quadObj(q [][]float64, alpha []float64) float64 {
	var obj float64
	for i := range q {
		for j := range q {
			obj += alpha[i] * q[i][j] * alpha[j]
		}
	}
	return obj / 2
}

// checkSolverKKT verifies the stationarity conditions within tolerance.
func checkSolverKKT(t *testing.T, q [][]float64, res *smoResult, u float64) {
	t.Helper()
	n := len(q)
	for i := 0; i < n; i++ {
		var g float64
		for j := 0; j < n; j++ {
			g += q[i][j] * res.alpha[j]
		}
		switch {
		case res.alpha[i] <= 1e-10: // at zero: G ≥ b − eps
			if g < res.b-1e-3 {
				t.Errorf("KKT violated at zero var %d: G=%v b=%v", i, g, res.b)
			}
		case res.alpha[i] >= u-1e-10: // at bound: G ≤ b + eps
			if g > res.b+1e-3 {
				t.Errorf("KKT violated at bound var %d: G=%v b=%v", i, g, res.b)
			}
		default: // free: G ≈ b
			if math.Abs(g-res.b) > 1e-3 {
				t.Errorf("KKT violated at free var %d: G=%v b=%v", i, g, res.b)
			}
		}
	}
}

// randomPSD builds MᵀM + εI for a random M.
func randomPSD(r *rand.Rand, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = r.NormFloat64()
		}
	}
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			var s float64
			for k := 0; k < n; k++ {
				s += m[k][i] * m[k][j]
			}
			q[i][j] = s
			if i == j {
				q[i][j] += 1e-6
			}
		}
	}
	return q
}

func TestCalibratedBias(t *testing.T) {
	// Two at-bound variables with the smallest gradients: b must be the
	// 2nd-order statistic (0-based index 2).
	alpha := []float64{0.5, 0.5, 0.2, 0}
	grad := []float64{1, 2, 3, 4}
	if got := calibratedBias(alpha, grad, 0.5); got != 3 {
		t.Errorf("calibratedBias = %v, want 3", got)
	}
	// No at-bound variables: b is the smallest gradient (everything
	// accepted).
	alpha2 := []float64{0.3, 0.3, 0.4}
	if got := calibratedBias(alpha2, grad[:3], 0.5); got != 1 {
		t.Errorf("calibratedBias = %v, want 1", got)
	}
	// All at bound: index clamps to len-1.
	alpha3 := []float64{0.5, 0.5}
	if got := calibratedBias(alpha3, []float64{7, 9}, 0.5); got != 9 {
		t.Errorf("calibratedBias = %v, want 9", got)
	}
}

func TestEstimateBias(t *testing.T) {
	// Free variables average.
	alpha := []float64{0.25, 0.25, 0.5, 0}
	grad := []float64{2, 4, 1, 9}
	b, free := estimateBias(alpha, grad, 0.5)
	if free != 2 || math.Abs(b-3) > 1e-12 {
		t.Errorf("b = %v free = %d, want 3 with 2 free", b, free)
	}
	// No free: midpoint of bound gradients.
	alpha2 := []float64{0.5, 0}
	grad2 := []float64{1, 5}
	b2, free2 := estimateBias(alpha2, grad2, 0.5)
	if free2 != 0 || math.Abs(b2-3) > 1e-12 {
		t.Errorf("b = %v free = %d, want 3 with 0 free", b2, free2)
	}
}
