package svm

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"webtxprofile/internal/sparse"
)

// indexKernelsUnderTest covers the non-linear kernel family the inverted
// index serves, with degree variants exercising both ipow and the closed
// cubic form.
func indexKernelsUnderTest() []Kernel {
	return []Kernel{
		Poly(0.05, 0.3, 2),
		Poly(0.05, 0.3, 3),
		Poly(0.02, 1, 4),
		RBF(0.1),
		RBF(0.8),
		Sigmoid(0.05, -0.1),
		Sigmoid(0.02, 0.5),
	}
}

// randomModel hand-assembles a structurally valid model with random
// support vectors and coefficients for an arbitrary kernel. Validate is
// NOT called; callers decide whether to prepare the caches.
func randomModel(r *rand.Rand, algo Algorithm, kernel Kernel, nsv, dim, nnz int) *Model {
	m := &Model{Algo: algo, Kernel: kernel, Param: 0.1, TrainSize: nsv}
	for i := 0; i < nsv; i++ {
		m.SVs = append(m.SVs, randomSparse(r, dim, nnz))
		m.Coef = append(m.Coef, 0.01+r.Float64())
	}
	switch algo {
	case OCSVM:
		m.Rho = r.Float64()
	case SVDD:
		m.R2 = 1 + r.Float64()
		m.SumAA = r.Float64()
	}
	return m
}

// TestIndexedPathMatchesGeneric is the tentpole equivalence property: for
// every non-linear kernel and both algorithms, the inverted-index decision
// must agree with the per-SV merge-join sum within 1e-9 on randomized
// models and probes — probes drawn beyond the SV column range and the
// empty window included.
func TestIndexedPathMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, kernel := range indexKernelsUnderTest() {
		for _, algo := range []Algorithm{OCSVM, SVDD} {
			for trial := 0; trial < 8; trial++ {
				nsv := 1 + r.Intn(120)
				m := randomModel(r, algo, kernel, nsv, 800, 5+r.Intn(25))
				if err := m.Validate(); err != nil {
					t.Fatal(err)
				}
				if m.idx == nil {
					t.Fatalf("%v %v: no SV index after Validate", kernel, algo)
				}
				probes := make([]sparse.Vector, 0, 16)
				probes = append(probes, sparse.Vector{}) // empty window
				for p := 0; p < 15; p++ {
					// Probes exceed the SV column range to exercise the
					// out-of-range cutoff in the postings walk.
					probes = append(probes, randomSparse(r, 1000, 5+r.Intn(25)))
				}
				for _, x := range probes {
					fast, generic := m.Decision(x), m.DecisionGeneric(x)
					if math.Abs(fast-generic) > 1e-9 {
						t.Fatalf("%v %v nsv=%d: indexed %v vs generic %v (diff %g)",
							kernel, algo, nsv, fast, generic, math.Abs(fast-generic))
					}
					if m.acceptsValue(fast) != m.acceptsValue(generic) {
						t.Fatalf("%v %v: accept flipped at decision %v", kernel, algo, fast)
					}
				}
			}
		}
	}
}

// TestIndexedUnpreparedModelFallsBack checks the unprepared-model
// contract: a hand-assembled non-linear model that never called Validate
// has no index and Decision must equal DecisionGeneric exactly.
func TestIndexedUnpreparedModelFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for _, algo := range []Algorithm{OCSVM, SVDD} {
		m := randomModel(r, algo, RBF(0.2), 40, 300, 12)
		if m.idx != nil || m.svNorms != nil {
			t.Fatal("hand-assembled model has prepared caches")
		}
		for i := 0; i < 20; i++ {
			x := randomSparse(r, 300, 12)
			if got, want := m.Decision(x), m.DecisionGeneric(x); got != want {
				t.Fatalf("unprepared decision %v != generic %v", got, want)
			}
		}
	}
}

// TestIndexedSurvivesJSONRoundTrip asserts the inverted index is rebuilt
// on unmarshal and produces bit-identical decisions (the rebuilt postings
// are deterministic, so the indexed sums run in the same order).
func TestIndexedSurvivesJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, kernel := range []Kernel{Poly(0.05, 0.3, 3), RBF(0.1), Sigmoid(0.05, 0)} {
		m := randomModel(r, SVDD, kernel, 60, 500, 15)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back Model
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.idx == nil {
			t.Fatalf("%v: SV index lost in JSON round trip", kernel)
		}
		for i := 0; i < 20; i++ {
			x := randomSparse(r, 500, 15)
			if a, b := m.Decision(x), back.Decision(x); a != b {
				t.Fatalf("%v: decision drift after round trip: %v vs %v", kernel, a, b)
			}
		}
	}
}

// TestIndexedTrainedModels checks that Train prepares the index for
// non-linear kernels and that trained-model decisions agree with the
// generic path on training-shaped data.
func TestIndexedTrainedModels(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	xs := binaryCluster(r, 120, []int{0, 4, 7, 12}, []int{20, 21, 22, 23}, 0.4)
	for _, kernel := range []Kernel{Poly(0.1, 0, 3), RBF(0.1), Sigmoid(0.1, 0)} {
		for _, algo := range []Algorithm{OCSVM, SVDD} {
			m, err := Train(algo, xs, 0.2, TrainConfig{Kernel: kernel})
			if err != nil {
				t.Fatal(err)
			}
			if m.idx == nil {
				t.Fatalf("%v %v: trained model has no SV index", kernel, algo)
			}
			if m.w != nil {
				t.Fatalf("%v %v: non-linear model has a weight vector", kernel, algo)
			}
			for _, x := range xs[:40] {
				if d := math.Abs(m.Decision(x) - m.DecisionGeneric(x)); d > 1e-9 {
					t.Fatalf("%v %v: indexed/generic diff %g", kernel, algo, d)
				}
			}
		}
	}
}

// TestScorerSharedScratchAcrossSizes scores through models of very
// different SV counts in both orders, exercising the scorer's shared
// dot-product buffer growing and shrinking between models.
func TestScorerSharedScratchAcrossSizes(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	small := randomModel(r, OCSVM, RBF(0.2), 3, 200, 10)
	big := randomModel(r, SVDD, Poly(0.05, 0.3, 3), 150, 200, 10)
	mid := randomModel(r, OCSVM, Sigmoid(0.1, 0), 40, 200, 10)
	for _, m := range []*Model{small, big, mid} {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, order := range [][]*Model{
		{small, big, mid},
		{big, small, mid},
		{mid, big, small},
	} {
		sc := NewScorer(order)
		for trial := 0; trial < 20; trial++ {
			x := randomSparse(r, 250, 12)
			dec := sc.Decisions(x)
			for i, m := range order {
				if want := m.Decision(x); dec[i] != want {
					t.Fatalf("model %d (%v): batch %v vs solo %v", i, m.Kernel, dec[i], want)
				}
			}
		}
	}
}

// TestSVIndexStructure sanity-checks the transposed CSR on a
// hand-constructed SV set.
func TestSVIndexStructure(t *testing.T) {
	svs := []sparse.Vector{
		sparse.New(map[int]float64{0: 1, 3: 2}),
		sparse.New(map[int]float64{3: 4, 5: 0.5}),
		sparse.New(map[int]float64{1: 3}),
	}
	ix := buildSVIndex(svs)
	if ix.nsv != 3 {
		t.Fatalf("nsv = %d", ix.nsv)
	}
	x := sparse.New(map[int]float64{3: 2, 5: 2, 9: 7}) // column 9 beyond range
	dots := ix.dotsInto(x, nil)
	want := []float64{4, 9, 0} // x·sv0 = 2·2, x·sv1 = 2·4 + 2·0.5, x·sv2 = 0
	for i := range want {
		if dots[i] != want[i] {
			t.Fatalf("dots = %v, want %v", dots, want)
		}
	}
	if got := ix.dotsInto(sparse.Vector{}, dots); len(got) != 3 || got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("empty-window dots = %v, want zeros (stale scratch not cleared?)", got)
	}
}
