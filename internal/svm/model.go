package svm

import (
	"encoding/json"
	"fmt"
	"math"

	"webtxprofile/internal/sparse"
)

// Algorithm selects between the two one-class classifiers of Sect. II.
type Algorithm int

// Supported algorithms. The zero value is invalid.
const (
	OCSVM Algorithm = iota + 1
	SVDD
)

var algorithmNames = map[Algorithm]string{OCSVM: "oc-svm", SVDD: "svdd"}

// String returns the algorithm name as used in the paper's tables.
func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// ParseAlgorithm converts an algorithm name back into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, name := range algorithmNames {
		if s == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("svm: unknown algorithm %q", s)
}

// Model is a trained one-class classifier: the support vectors with their
// dual coefficients and the decision threshold. The decision functions are
// Eq. 6 (OC-SVM) and Eq. 12 (SVDD) of the paper; Accept reports f(x) ≥ 0.
type Model struct {
	Algo   Algorithm       `json:"algorithm"`
	Kernel Kernel          `json:"kernel"`
	SVs    []sparse.Vector `json:"support_vectors"`
	Coef   []float64       `json:"coefficients"`
	// Rho is the OC-SVM offset ρ (Eq. 6); unused for SVDD.
	Rho float64 `json:"rho,omitempty"`
	// R2 is the squared SVDD radius (Eq. 11); unused for OC-SVM.
	R2 float64 `json:"r2,omitempty"`
	// SumAA is ΣΣ αᵢαⱼk(xᵢ,xⱼ) over support vectors, precomputed for the
	// SVDD decision function (Eq. 12); unused for OC-SVM.
	SumAA float64 `json:"sum_aa,omitempty"`
	// Param records the training parameter: ν for OC-SVM, C for SVDD.
	Param float64 `json:"param"`
	// TrainSize is the number of training windows the model was fit on.
	TrainSize int `json:"train_size"`
	// Converged records whether SMO reached the KKT tolerance.
	Converged bool `json:"converged"`
	// Iterations is the SMO iteration count.
	Iterations int `json:"iterations"`

	// svNorms caches ‖sv‖² for RBF decisions, w caches the dense weight
	// vector Σᵢ αᵢxᵢ that collapses linear-kernel decisions into a single
	// sparse-dense dot product, and idx holds the inverted support-vector
	// index that batches all SV dot products for the non-linear kernels.
	// Train, UnmarshalJSON and Validate populate them (see prepare);
	// Decision never writes them, so models are always safe for concurrent
	// Decision calls — hand-assembled models that skip Validate just take
	// the slower uncached path.
	svNorms []float64
	w       []float64
	idx     *svIndex
}

// prepare (re)computes the derived caches: the support-vector norms plus,
// for linear kernels, the dense weight vector w = Σᵢ αᵢxᵢ and, for the
// other kernels, the inverted support-vector index (every kernel factors
// through x·y, see svIndex). It is called from Train, UnmarshalJSON and
// Validate — never from Decision, which keeps concurrent decisions
// race-free on any model.
func (m *Model) prepare() {
	m.svNorms = norms(m.SVs)
	if m.Kernel.Kind == KernelLinear {
		m.w = weightVector(m.SVs, m.Coef)
		m.idx = nil
	} else {
		m.w = nil
		m.idx = buildSVIndex(m.SVs)
	}
}

// weightVector folds the support vectors into the dense vector Σᵢ αᵢxᵢ.
func weightVector(svs []sparse.Vector, coef []float64) []float64 {
	maxIdx := -1
	for _, sv := range svs {
		if n := len(sv.Idx); n > 0 && int(sv.Idx[n-1]) > maxIdx {
			maxIdx = int(sv.Idx[n-1])
		}
	}
	w := make([]float64, maxIdx+1)
	for i, sv := range svs {
		a := coef[i]
		for k, idx := range sv.Idx {
			w[idx] += a * sv.Val[k]
		}
	}
	return w
}

// dotDense computes w·x for a dense w and sparse x in O(nnz(x)). Columns
// of x beyond len(w) have zero weight and are skipped.
func dotDense(w []float64, x sparse.Vector) float64 {
	var sum float64
	for k, i := range x.Idx {
		if int(i) < len(w) {
			sum += w[i] * x.Val[k]
		}
	}
	return sum
}

// acceptTol absorbs floating-point dust at the decision boundary: training
// points that sit exactly on the separating surface (duplicated windows in
// particular) evaluate to ±few ulps around zero because Σα carries rounding
// error. The tolerance scales with the magnitude of the threshold terms and
// is ~9 orders of magnitude below any meaningful rejection margin.
func (m *Model) acceptTol() float64 {
	return 1e-9 * (1 + math.Abs(m.Rho) + math.Abs(m.R2) + math.Abs(m.SumAA))
}

// NumSVs returns the support vector count.
func (m *Model) NumSVs() int { return len(m.SVs) }

// Decision evaluates the signed decision value f(x): non-negative means
// the window is accepted as belonging to the profiled user.
//
//	OC-SVM: f(x) = Σᵢ αᵢ k(xᵢ, x) − ρ                            (Eq. 6)
//	SVDD:   f(x) = R² − ΣΣ αᵢαⱼk(xᵢ,xⱼ) + 2Σᵢ αᵢk(xᵢ,x) − k(x,x) (Eq. 12)
//
// Every kernel of the family factors through the dot product x·y, so no
// prepared model pays the per-support-vector merge join: linear kernels
// collapse the sum to w·x with the precomputed weight vector w = Σᵢ αᵢxᵢ
// (O(nnz(x)) regardless of SV count), and polynomial/RBF/sigmoid kernels
// batch all SV dot products through the inverted support-vector index in
// one pass over x's non-zeros before a scalar kernel loop. Models from
// Train, UnmarshalJSON or Validate have these caches populated;
// hand-assembled models that skip Validate fall back to the
// per-support-vector sum of DecisionGeneric.
func (m *Model) Decision(x sparse.Vector) float64 {
	return m.decision(x, x.NormSq())
}

// decision is Decision with ‖x‖² precomputed, so batch scorers pay for it
// once per window rather than once per model.
func (m *Model) decision(x sparse.Vector, nx float64) float64 {
	if m.idx != nil {
		bufp := dotsPool.Get().(*[]float64)
		v, buf := m.decisionIndexed(x, nx, *bufp)
		*bufp = buf
		dotsPool.Put(bufp)
		return v
	}
	v, _ := m.decisionScratch(x, nx, nil)
	return v
}

// decisionScratch is the scratch-threading decision kernel behind both
// Decision and the batch Scorer: dots is the caller-owned dot-product
// accumulator for the indexed path (grown as needed and handed back for
// reuse). The dispatch order mirrors prepare: linear models carry w, every
// other prepared model carries idx, and unprepared hand-assembled models
// fall back to the per-SV merge join of decisionGeneric.
func (m *Model) decisionScratch(x sparse.Vector, nx float64, dots []float64) (float64, []float64) {
	if m.w != nil && m.Kernel.Kind == KernelLinear {
		wx := dotDense(m.w, x)
		switch m.Algo {
		case OCSVM:
			return wx - m.Rho, dots
		case SVDD:
			return m.R2 - m.SumAA + 2*wx - nx, dots
		default:
			panic("svm: Decision on invalid model")
		}
	}
	if m.idx != nil {
		return m.decisionIndexed(x, nx, dots)
	}
	return m.decisionGeneric(x, nx), dots
}

// decisionIndexed evaluates f(x) through the inverted support-vector
// index: one pass over x's non-zeros accumulates every SV dot product,
// then a kernel-specialized scalar loop folds in αᵢ·k(xᵢ,x). dots is
// caller scratch, returned (possibly regrown) for reuse.
func (m *Model) decisionIndexed(x sparse.Vector, nx float64, dots []float64) (float64, []float64) {
	dots = m.idx.dotsInto(x, dots)
	k := m.Kernel
	coef := m.Coef
	var sum float64
	switch k.Kind {
	case KernelPoly:
		g, c0 := k.Gamma, k.Coef0
		if k.Degree == 3 { // LIBSVM's default degree, worth a closed form
			for i, d := range dots {
				b := g*d + c0
				sum += coef[i] * b * b * b
			}
		} else {
			for i, d := range dots {
				sum += coef[i] * ipow(g*d+c0, k.Degree)
			}
		}
	case KernelRBF:
		g := k.Gamma
		sn := m.svNorms
		for i, d := range dots {
			d2 := sn[i] + nx - 2*d
			if d2 < 0 {
				d2 = 0
			}
			sum += coef[i] * math.Exp(-g*d2)
		}
	case KernelSigmoid:
		g, c0 := k.Gamma, k.Coef0
		for i, d := range dots {
			sum += coef[i] * math.Tanh(g*d+c0)
		}
	default: // linear models take the weight-vector path; kept for completeness
		for i, d := range dots {
			sum += coef[i] * d
		}
	}
	switch m.Algo {
	case OCSVM:
		return sum - m.Rho, dots
	case SVDD:
		return m.R2 - m.SumAA + 2*sum - k.evalSelf(nx), dots
	default:
		panic("svm: Decision on invalid model")
	}
}

// DecisionGeneric evaluates f(x) with the per-support-vector kernel sum,
// bypassing the linear-kernel weight-vector fast path. It is the reference
// implementation the fast path is verified against (and benchmarked
// against); both agree within floating-point accumulation error (≤ 1e-9
// at realistic magnitudes).
func (m *Model) DecisionGeneric(x sparse.Vector) float64 {
	return m.decisionGeneric(x, x.NormSq())
}

func (m *Model) decisionGeneric(x sparse.Vector, nx float64) float64 {
	sn := m.svNorms
	if sn == nil {
		// Unprepared hand-assembled model: compute the norms locally
		// instead of lazily caching them, so concurrent Decision calls
		// never race. Call Validate once to cache them (and enable the
		// linear fast path).
		sn = norms(m.SVs)
	}
	var sum float64
	for i := range m.SVs {
		sum += m.Coef[i] * m.Kernel.evalNorms(m.SVs[i], x, sn[i], nx)
	}
	switch m.Algo {
	case OCSVM:
		return sum - m.Rho
	case SVDD:
		return m.R2 - m.SumAA + 2*sum - m.Kernel.evalSelf(nx)
	default:
		panic("svm: Decision on invalid model")
	}
}

// Accept reports whether the model accepts x (f(x) ≥ 0, up to
// floating-point tolerance at the boundary).
func (m *Model) Accept(x sparse.Vector) bool {
	return m.acceptsValue(m.Decision(x))
}

// acceptsValue applies the acceptance rule to an already-computed decision
// value, so batch scorers share one rule with Accept.
func (m *Model) acceptsValue(dec float64) bool {
	return dec >= -m.acceptTol()
}

// AcceptanceRatio returns the fraction of xs accepted by the model — the
// building block of the paper's ACC_self and ACC_other metrics.
func (m *Model) AcceptanceRatio(xs []sparse.Vector) float64 {
	if len(xs) == 0 {
		return 0
	}
	accepted := 0
	for _, x := range xs {
		if m.Accept(x) {
			accepted++
		}
	}
	return float64(accepted) / float64(len(xs))
}

// Validate checks structural integrity after deserialization.
func (m *Model) Validate() error {
	switch m.Algo {
	case OCSVM, SVDD:
	default:
		return fmt.Errorf("svm: invalid algorithm %d", int(m.Algo))
	}
	if err := m.Kernel.Validate(); err != nil {
		return err
	}
	if len(m.SVs) == 0 {
		return fmt.Errorf("svm: model has no support vectors")
	}
	if len(m.SVs) != len(m.Coef) {
		return fmt.Errorf("svm: %d support vectors but %d coefficients", len(m.SVs), len(m.Coef))
	}
	for i := range m.SVs {
		if err := m.SVs[i].Validate(); err != nil {
			return fmt.Errorf("svm: support vector %d: %w", i, err)
		}
		if m.Coef[i] <= 0 {
			return fmt.Errorf("svm: non-positive coefficient %g at %d", m.Coef[i], i)
		}
	}
	// A structurally valid model is worth caching for: populate the norm
	// cache and, for linear kernels, the weight-vector fast path. Doing it
	// here (rather than lazily in Decision) keeps Decision free of writes
	// and therefore safe for concurrent use on any model.
	m.prepare()
	return nil
}

// MarshalJSON serializes the model.
func (m *Model) MarshalJSON() ([]byte, error) {
	type alias Model // strip methods to avoid recursion
	return json.Marshal((*alias)(m))
}

// UnmarshalJSON restores a model and validates it; Validate repopulates
// the derived caches (support-vector norms, linear weight vector), so the
// fast path survives JSON round trips. On any decode or validation error
// the receiver is left untouched.
func (m *Model) UnmarshalJSON(data []byte) error {
	type alias Model
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	tmp := Model(a)
	if err := tmp.Validate(); err != nil {
		return err
	}
	*m = tmp
	return nil
}
