package svm

import (
	"fmt"
	"slices"

	"webtxprofile/internal/sparse"
)

// The SMO solver minimizes the shared dual form of both one-class problems:
//
//	min_α  ½ αᵀQα + pᵀα    s.t.  Σᵢ αᵢ = 1,  0 ≤ αᵢ ≤ U
//
// For ν-OC-SVM (Eq. 5 of the paper): Q = K, p = 0, U = 1/(νl).
// For SVDD (Eq. 10, negated):       Q = 2K, p = −diag(K), U = C.
//
// Working-set selection follows LIBSVM: the first index is the maximal
// violator, the second maximizes the second-order objective decrease.

const (
	// tau replaces non-positive curvature in the second-order working-set
	// selection, as in LIBSVM.
	tau = 1e-12
	// DefaultEps is the default KKT-violation stopping tolerance.
	DefaultEps = 1e-3
)

// smoProblem describes one dual problem instance. The quadratic term is
// supplied as raw kernel columns plus a scalar: Q = qscale·K. Keeping K
// unscaled is what lets one materialized Gram serve both algorithms (and,
// in the grid search, every ν/C cell of a row) — the OC-SVM (qscale 1) and
// SVDD (qscale 2) duals differ only in the scalar and the linear term.
type smoProblem struct {
	n      int
	kcol   func(i int) []float64 // column i of the kernel matrix K
	kdiag  []float64             // diagonal of K
	qscale float64               // Q = qscale·K (0 means 1)
	p      []float64             // linear term; nil means zero
	u      float64               // box upper bound
	eps    float64               // stopping tolerance
	maxItr int
}

// smoResult carries the solver outputs.
type smoResult struct {
	alpha     []float64
	grad      []float64 // final gradient G = Qα + p
	b         float64   // Lagrange multiplier of the equality constraint
	obj       float64   // final objective value
	iters     int
	converged bool
	freeSVs   int
}

// solve runs SMO to convergence (or maxItr).
func (pr *smoProblem) solve() (*smoResult, error) {
	n := pr.n
	if n == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if pr.u*float64(n) < 1-1e-12 {
		return nil, fmt.Errorf("svm: infeasible problem: U·l = %g < 1", pr.u*float64(n))
	}
	if pr.eps <= 0 {
		pr.eps = DefaultEps
	}
	if pr.maxItr <= 0 {
		pr.maxItr = maxIterations(n)
	}
	q := pr.qscale
	if q == 0 {
		q = 1
	}

	// Feasible start: fill α to Σα=1 respecting the box.
	alpha := make([]float64, n)
	remaining := 1.0
	for i := 0; i < n && remaining > 0; i++ {
		a := pr.u
		if a > remaining {
			a = remaining
		}
		alpha[i] = a
		remaining -= a
	}

	// G = p + Qα, built from the columns of initially active variables.
	grad := make([]float64, n)
	if pr.p != nil {
		copy(grad, pr.p)
	}
	for i := 0; i < n; i++ {
		if alpha[i] == 0 {
			continue
		}
		col := pr.kcol(i)
		ai := q * alpha[i]
		for t := 0; t < n; t++ {
			grad[t] += ai * col[t]
		}
	}

	iters := 0
	converged := false
	for ; iters < pr.maxItr; iters++ {
		i, j, ok := pr.selectWorkingSet(alpha, grad, q)
		if !ok {
			converged = true
			break
		}
		coli := pr.kcol(i)
		colj := pr.kcol(j)

		// One-dimensional update along e_i − e_j.
		quad := q * (pr.kdiag[i] + pr.kdiag[j] - 2*coli[j])
		if quad <= 0 {
			quad = tau
		}
		delta := (grad[j] - grad[i]) / quad
		if max := pr.u - alpha[i]; delta > max {
			delta = max
		}
		if alpha[j] < delta {
			delta = alpha[j]
		}
		if delta <= 0 {
			// Numerically stuck: the selected pair admits no feasible
			// progress, treat as converged at tolerance.
			converged = true
			break
		}
		alpha[i] += delta
		alpha[j] -= delta
		qd := q * delta
		for t := 0; t < n; t++ {
			grad[t] += qd * (coli[t] - colj[t])
		}
	}

	res := &smoResult{alpha: alpha, grad: grad, iters: iters, converged: converged}
	res.b, res.freeSVs = estimateBias(alpha, grad, pr.u)
	res.obj = pr.objective(alpha, grad)
	return res, nil
}

// calibratedBias returns the decision threshold aligned with the solved
// dual: for both one-class duals the training decision value of point i is
// Gᵢ − b, and the at-bound variables (αᵢ = U) are exactly the training
// outliers, which carry the smallest gradients. Choosing b as the k-th
// smallest gradient value — k being the number of at-bound variables —
// rejects exactly the at-bound outliers while accepting boundary ties.
//
// On non-degenerate converged problems this lies inside the KKT interval
// [max_{α=U} G, min_{α=0} G] and so differs from the Lagrange multiplier by
// less than eps; its advantage shows on degenerate corpora where many
// training windows are exact duplicates (common with bag-of-words windows,
// cf. Sect. IV-B of the paper where window novelty is low): the duplicated
// mass then sits exactly on the boundary and the KKT midpoint would reject
// all of it.
func calibratedBias(alpha, grad []float64, u float64) float64 {
	const boundTol = 1e-10
	k := 0
	for _, a := range alpha {
		if a >= u-boundTol {
			k++
		}
	}
	sorted := make([]float64, len(grad))
	copy(sorted, grad)
	slices.Sort(sorted)
	if k > len(sorted)-1 {
		k = len(sorted) - 1
	}
	return sorted[k]
}

// selectWorkingSet picks the maximal-violating pair (i, j) using
// second-order selection for j (q is the Q = q·K scale). ok is false when
// the KKT violation is within eps (converged).
func (pr *smoProblem) selectWorkingSet(alpha, grad []float64, q float64) (int, int, bool) {
	// i: among α_t < U, minimize G_t (the variable we can increase with
	// the steepest descent).
	i := -1
	gmin := 0.0
	for t := 0; t < pr.n; t++ {
		if alpha[t] < pr.u && (i == -1 || grad[t] < gmin) {
			i = t
			gmin = grad[t]
		}
	}
	if i == -1 {
		return -1, -1, false
	}
	// Maximal violation bound: among α_t > 0, the largest G_t.
	gmax := 0.0
	found := false
	for t := 0; t < pr.n; t++ {
		if alpha[t] > 0 && (!found || grad[t] > gmax) {
			gmax = grad[t]
			found = true
		}
	}
	if !found || gmax-gmin < pr.eps {
		return -1, -1, false
	}
	// j: second-order selection among α_t > 0 with G_t > G_i.
	coli := pr.kcol(i)
	j := -1
	best := 0.0
	for t := 0; t < pr.n; t++ {
		if alpha[t] <= 0 {
			continue
		}
		bt := grad[t] - gmin
		if bt <= 0 {
			continue
		}
		at := q * (pr.kdiag[i] + pr.kdiag[t] - 2*coli[t])
		if at <= 0 {
			at = tau
		}
		if gain := bt * bt / at; j == -1 || gain > best {
			j = t
			best = gain
		}
	}
	if j == -1 {
		return -1, -1, false
	}
	return i, j, true
}

// estimateBias recovers the equality-constraint multiplier b from the KKT
// conditions: G_i = b on free vectors; G_i ≥ b at α=0; G_i ≤ b at α=U.
func estimateBias(alpha, grad []float64, u float64) (float64, int) {
	const boundTol = 1e-10
	var sum float64
	free := 0
	lower := 0.0 // max G over α=U (b ≥ lower)
	upper := 0.0 // min G over α=0 (b ≤ upper)
	haveLower, haveUpper := false, false
	for t := range alpha {
		switch {
		case alpha[t] <= boundTol:
			if !haveUpper || grad[t] < upper {
				upper = grad[t]
				haveUpper = true
			}
		case alpha[t] >= u-boundTol:
			if !haveLower || grad[t] > lower {
				lower = grad[t]
				haveLower = true
			}
		default:
			sum += grad[t]
			free++
		}
	}
	if free > 0 {
		return sum / float64(free), free
	}
	switch {
	case haveLower && haveUpper:
		return (lower + upper) / 2, 0
	case haveLower:
		return lower, 0
	default:
		return upper, 0
	}
}

// objective computes ½αᵀQα + pᵀα from the final gradient G = Qα + p:
// ½αᵀ(G − p) + pᵀα = ½αᵀG + ½pᵀα.
func (pr *smoProblem) objective(alpha, grad []float64) float64 {
	var ag, ap float64
	for t := range alpha {
		ag += alpha[t] * grad[t]
		if pr.p != nil {
			ap += alpha[t] * pr.p[t]
		}
	}
	return 0.5 * (ag + ap)
}

// maxIterations caps SMO iterations proportionally to the problem size.
func maxIterations(n int) int {
	it := 200 * n
	if it < 20000 {
		it = 20000
	}
	if it > 5_000_000 {
		it = 5_000_000
	}
	return it
}

// columnCache lazily computes and retains raw columns of the kernel matrix
// K (the Q scale lives in smoProblem.qscale). Retention is bounded by
// maxCols with FIFO eviction of the least recently inserted column,
// implemented as a ring over a fixed slot array: a head index walks the
// ring in place of re-slicing an order queue, so the backing array is
// reused instead of pinned by the advancing slice header. Lookups feed the
// package cache-hit/miss counters (see stats.go).
type columnCache struct {
	kernel  Kernel
	xs      []sparse.Vector
	normsSq []float64
	cols    map[int][]float64
	ring    []int // FIFO of resident column ids, oldest at head
	head    int   // slot of the oldest resident column
	size    int   // occupied slots
}

// newColumnCache sizes the cache to budgetMB megabytes (at least 2 columns).
func newColumnCache(kernel Kernel, xs []sparse.Vector, budgetMB int) *columnCache {
	if budgetMB <= 0 {
		budgetMB = 64
	}
	colBytes := 8 * len(xs)
	maxCols := budgetMB * (1 << 20) / max(colBytes, 1)
	if maxCols < 2 {
		maxCols = 2
	}
	if maxCols > len(xs) {
		maxCols = len(xs)
	}
	return &columnCache{
		kernel:  kernel,
		xs:      xs,
		normsSq: norms(xs),
		cols:    make(map[int][]float64, maxCols),
		ring:    make([]int, maxCols),
	}
}

// column returns K column i, computing and caching it if absent.
func (c *columnCache) column(i int) []float64 {
	if col, ok := c.cols[i]; ok {
		statCacheHits.Add(1)
		return col
	}
	statCacheMisses.Add(1)
	statKernelEvals.Add(uint64(len(c.xs)))
	col := make([]float64, len(c.xs))
	xi, ni := c.xs[i], c.normsSq[i]
	for t := range c.xs {
		col[t] = c.kernel.evalNorms(xi, c.xs[t], ni, c.normsSq[t])
	}
	if c.size == len(c.ring) {
		delete(c.cols, c.ring[c.head])
		c.ring[c.head] = i
		c.head = (c.head + 1) % len(c.ring)
	} else {
		c.ring[(c.head+c.size)%len(c.ring)] = i
		c.size++
	}
	c.cols[i] = col
	return col
}

// diagonal returns the diagonal of K.
func (c *columnCache) diagonal() []float64 {
	statKernelEvals.Add(uint64(len(c.xs)))
	d := make([]float64, len(c.xs))
	for t := range c.xs {
		d[t] = c.kernel.evalSelf(c.normsSq[t])
	}
	return d
}
