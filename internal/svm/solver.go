package svm

import (
	"fmt"
	"slices"

	"webtxprofile/internal/sparse"
)

// The SMO solver minimizes the shared dual form of both one-class problems:
//
//	min_α  ½ αᵀQα + pᵀα    s.t.  Σᵢ αᵢ = 1,  0 ≤ αᵢ ≤ U
//
// For ν-OC-SVM (Eq. 5 of the paper): Q = K, p = 0, U = 1/(νl).
// For SVDD (Eq. 10, negated):       Q = 2K, p = −diag(K), U = C.
//
// Working-set selection follows LIBSVM: the first index is the maximal
// violator, the second maximizes the second-order objective decrease.

const (
	// tau replaces non-positive curvature in the second-order working-set
	// selection, as in LIBSVM.
	tau = 1e-12
	// DefaultEps is the default KKT-violation stopping tolerance.
	DefaultEps = 1e-3
)

// smoProblem describes one dual problem instance.
type smoProblem struct {
	n      int
	qcol   func(i int) []float64 // column i of Q
	qdiag  []float64             // diagonal of Q
	p      []float64             // linear term; nil means zero
	u      float64               // box upper bound
	eps    float64               // stopping tolerance
	maxItr int
}

// smoResult carries the solver outputs.
type smoResult struct {
	alpha     []float64
	grad      []float64 // final gradient G = Qα + p
	b         float64   // Lagrange multiplier of the equality constraint
	obj       float64   // final objective value
	iters     int
	converged bool
	freeSVs   int
}

// solve runs SMO to convergence (or maxItr).
func (pr *smoProblem) solve() (*smoResult, error) {
	n := pr.n
	if n == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if pr.u*float64(n) < 1-1e-12 {
		return nil, fmt.Errorf("svm: infeasible problem: U·l = %g < 1", pr.u*float64(n))
	}
	if pr.eps <= 0 {
		pr.eps = DefaultEps
	}
	if pr.maxItr <= 0 {
		pr.maxItr = maxIterations(n)
	}

	// Feasible start: fill α to Σα=1 respecting the box.
	alpha := make([]float64, n)
	remaining := 1.0
	for i := 0; i < n && remaining > 0; i++ {
		a := pr.u
		if a > remaining {
			a = remaining
		}
		alpha[i] = a
		remaining -= a
	}

	// G = p + Qα, built from the columns of initially active variables.
	grad := make([]float64, n)
	if pr.p != nil {
		copy(grad, pr.p)
	}
	for i := 0; i < n; i++ {
		if alpha[i] == 0 {
			continue
		}
		col := pr.qcol(i)
		ai := alpha[i]
		for t := 0; t < n; t++ {
			grad[t] += ai * col[t]
		}
	}

	iters := 0
	converged := false
	for ; iters < pr.maxItr; iters++ {
		i, j, ok := pr.selectWorkingSet(alpha, grad)
		if !ok {
			converged = true
			break
		}
		coli := pr.qcol(i)
		colj := pr.qcol(j)

		// One-dimensional update along e_i − e_j.
		quad := pr.qdiag[i] + pr.qdiag[j] - 2*coli[j]
		if quad <= 0 {
			quad = tau
		}
		delta := (grad[j] - grad[i]) / quad
		if max := pr.u - alpha[i]; delta > max {
			delta = max
		}
		if alpha[j] < delta {
			delta = alpha[j]
		}
		if delta <= 0 {
			// Numerically stuck: the selected pair admits no feasible
			// progress, treat as converged at tolerance.
			converged = true
			break
		}
		alpha[i] += delta
		alpha[j] -= delta
		for t := 0; t < n; t++ {
			grad[t] += delta * (coli[t] - colj[t])
		}
	}

	res := &smoResult{alpha: alpha, grad: grad, iters: iters, converged: converged}
	res.b, res.freeSVs = estimateBias(alpha, grad, pr.u)
	res.obj = pr.objective(alpha, grad)
	return res, nil
}

// calibratedBias returns the decision threshold aligned with the solved
// dual: for both one-class duals the training decision value of point i is
// Gᵢ − b, and the at-bound variables (αᵢ = U) are exactly the training
// outliers, which carry the smallest gradients. Choosing b as the k-th
// smallest gradient value — k being the number of at-bound variables —
// rejects exactly the at-bound outliers while accepting boundary ties.
//
// On non-degenerate converged problems this lies inside the KKT interval
// [max_{α=U} G, min_{α=0} G] and so differs from the Lagrange multiplier by
// less than eps; its advantage shows on degenerate corpora where many
// training windows are exact duplicates (common with bag-of-words windows,
// cf. Sect. IV-B of the paper where window novelty is low): the duplicated
// mass then sits exactly on the boundary and the KKT midpoint would reject
// all of it.
func calibratedBias(alpha, grad []float64, u float64) float64 {
	const boundTol = 1e-10
	k := 0
	for _, a := range alpha {
		if a >= u-boundTol {
			k++
		}
	}
	sorted := make([]float64, len(grad))
	copy(sorted, grad)
	slices.Sort(sorted)
	if k > len(sorted)-1 {
		k = len(sorted) - 1
	}
	return sorted[k]
}

// selectWorkingSet picks the maximal-violating pair (i, j) using
// second-order selection for j. ok is false when the KKT violation is
// within eps (converged).
func (pr *smoProblem) selectWorkingSet(alpha, grad []float64) (int, int, bool) {
	// i: among α_t < U, minimize G_t (the variable we can increase with
	// the steepest descent).
	i := -1
	gmin := 0.0
	for t := 0; t < pr.n; t++ {
		if alpha[t] < pr.u && (i == -1 || grad[t] < gmin) {
			i = t
			gmin = grad[t]
		}
	}
	if i == -1 {
		return -1, -1, false
	}
	// Maximal violation bound: among α_t > 0, the largest G_t.
	gmax := 0.0
	found := false
	for t := 0; t < pr.n; t++ {
		if alpha[t] > 0 && (!found || grad[t] > gmax) {
			gmax = grad[t]
			found = true
		}
	}
	if !found || gmax-gmin < pr.eps {
		return -1, -1, false
	}
	// j: second-order selection among α_t > 0 with G_t > G_i.
	coli := pr.qcol(i)
	j := -1
	best := 0.0
	for t := 0; t < pr.n; t++ {
		if alpha[t] <= 0 {
			continue
		}
		bt := grad[t] - gmin
		if bt <= 0 {
			continue
		}
		at := pr.qdiag[i] + pr.qdiag[t] - 2*coli[t]
		if at <= 0 {
			at = tau
		}
		if gain := bt * bt / at; j == -1 || gain > best {
			j = t
			best = gain
		}
	}
	if j == -1 {
		return -1, -1, false
	}
	return i, j, true
}

// estimateBias recovers the equality-constraint multiplier b from the KKT
// conditions: G_i = b on free vectors; G_i ≥ b at α=0; G_i ≤ b at α=U.
func estimateBias(alpha, grad []float64, u float64) (float64, int) {
	const boundTol = 1e-10
	var sum float64
	free := 0
	lower := 0.0 // max G over α=U (b ≥ lower)
	upper := 0.0 // min G over α=0 (b ≤ upper)
	haveLower, haveUpper := false, false
	for t := range alpha {
		switch {
		case alpha[t] <= boundTol:
			if !haveUpper || grad[t] < upper {
				upper = grad[t]
				haveUpper = true
			}
		case alpha[t] >= u-boundTol:
			if !haveLower || grad[t] > lower {
				lower = grad[t]
				haveLower = true
			}
		default:
			sum += grad[t]
			free++
		}
	}
	if free > 0 {
		return sum / float64(free), free
	}
	switch {
	case haveLower && haveUpper:
		return (lower + upper) / 2, 0
	case haveLower:
		return lower, 0
	default:
		return upper, 0
	}
}

// objective computes ½αᵀQα + pᵀα from the final gradient G = Qα + p:
// ½αᵀ(G − p) + pᵀα = ½αᵀG + ½pᵀα.
func (pr *smoProblem) objective(alpha, grad []float64) float64 {
	var ag, ap float64
	for t := range alpha {
		ag += alpha[t] * grad[t]
		if pr.p != nil {
			ap += alpha[t] * pr.p[t]
		}
	}
	return 0.5 * (ag + ap)
}

// maxIterations caps SMO iterations proportionally to the problem size.
func maxIterations(n int) int {
	it := 200 * n
	if it < 20000 {
		it = 20000
	}
	if it > 5_000_000 {
		it = 5_000_000
	}
	return it
}

// columnCache lazily computes and retains columns of the kernel matrix
// scaled by qscale. Retention is bounded by maxCols with FIFO-ish eviction
// of the least recently inserted column (a simple clock sweep is enough:
// SMO revisits recent columns heavily and old ones rarely).
type columnCache struct {
	kernel  Kernel
	xs      []sparse.Vector
	normsSq []float64
	qscale  float64
	cols    map[int][]float64
	order   []int // insertion order for eviction
	maxCols int
}

// newColumnCache sizes the cache to budgetMB megabytes (at least 2 columns).
func newColumnCache(kernel Kernel, xs []sparse.Vector, qscale float64, budgetMB int) *columnCache {
	if budgetMB <= 0 {
		budgetMB = 64
	}
	colBytes := 8 * len(xs)
	maxCols := budgetMB * (1 << 20) / max(colBytes, 1)
	if maxCols < 2 {
		maxCols = 2
	}
	if maxCols > len(xs) {
		maxCols = len(xs)
	}
	return &columnCache{
		kernel:  kernel,
		xs:      xs,
		normsSq: norms(xs),
		qscale:  qscale,
		cols:    make(map[int][]float64, maxCols),
		maxCols: maxCols,
	}
}

// column returns Q column i, computing and caching it if absent.
func (c *columnCache) column(i int) []float64 {
	if col, ok := c.cols[i]; ok {
		return col
	}
	if len(c.cols) >= c.maxCols {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.cols, victim)
	}
	col := make([]float64, len(c.xs))
	xi, ni := c.xs[i], c.normsSq[i]
	for t := range c.xs {
		col[t] = c.qscale * c.kernel.evalNorms(xi, c.xs[t], ni, c.normsSq[t])
	}
	c.cols[i] = col
	c.order = append(c.order, i)
	return col
}

// diagonal returns the diagonal of Q.
func (c *columnCache) diagonal() []float64 {
	d := make([]float64, len(c.xs))
	for t := range c.xs {
		d[t] = c.qscale * c.kernel.evalNorms(c.xs[t], c.xs[t], c.normsSq[t], c.normsSq[t])
	}
	return d
}
