package svm

import "math"

// The dense per-model passes of the fused engine: every loop here runs
// over a model's contiguous SV ordinal range (coef/sn/dots slices of equal
// length), restructured so the compiler eliminates every bounds check in
// the inner loops — CI builds this package with -d=ssa/check_bce and fails
// if a check reappears in this file. Keep new hot dense loops here, and
// keep the up-front reslices that feed the prover.

// fusedKernelSum computes Σᵢ αᵢ·k(xᵢ,x) from accumulated dot products,
// kernel-specialized exactly like Model.decisionIndexed (same operations
// in the same order — one accumulator, ascending i — so float64 sums are
// bit-identical to that path; do not reorder or unroll this one).
func fusedKernelSum[T float32 | float64](k Kernel, coef, sn []float64, dots []T, nx float64) float64 {
	coef = coef[:len(dots)]
	sn = sn[:len(dots)]
	var sum float64
	switch k.Kind {
	case KernelPoly:
		g, c0 := k.Gamma, k.Coef0
		if k.Degree == 3 { // LIBSVM's default degree, worth a closed form
			for i := range dots {
				b := g*float64(dots[i]) + c0
				sum += coef[i] * b * b * b
			}
		} else {
			for i := range dots {
				sum += coef[i] * ipow(g*float64(dots[i])+c0, k.Degree)
			}
		}
	case KernelRBF:
		g := k.Gamma
		for i := range dots {
			d2 := sn[i] + nx - 2*float64(dots[i])
			if d2 < 0 {
				d2 = 0
			}
			sum += coef[i] * math.Exp(-g*d2)
		}
	case KernelSigmoid:
		g, c0 := k.Gamma, k.Coef0
		for i := range dots {
			sum += coef[i] * math.Tanh(g*float64(dots[i])+c0)
		}
	default: // linear models take the weight-vector path; kept for completeness
		for i := range dots {
			sum += coef[i] * float64(dots[i])
		}
	}
	return sum
}

// fusedDotRange returns [dmin, dmax] ∋ 0 covering the accumulated dot
// products (0 is always included: untouched support vectors hold an
// exact zero).
func fusedDotRange[T float32 | float64](dots []T) (dmin, dmax float64) {
	for i := range dots {
		d := float64(dots[i])
		if d < dmin {
			dmin = d
		} else if d > dmax {
			dmax = d
		}
	}
	return dmin, dmax
}

// The RBF screening bound replaces exp with a table lookup: rbfExpUB[k]
// upper-bounds exp(−z) for every z whose truncated index int(z·invH)
// lands on k. The table entry is exp(−(k−1)·h) — one whole step h of
// deliberate slack — so admissibility needs no rounding analysis at all:
// truncation error, the index conversion's own rounding, and the tiny
// negative z values float cancellation can produce (the exact loop clamps
// those to k(x,xᵢ) = 1; here entry 0 holds e^h ≥ 1) are each orders of
// magnitude below h. The last entry bounds every larger z: idx ≥ 255
// implies z ≥ 254·h. Cost per support vector: a multiply, an int
// conversion, a clamp, and a load — no division, no transcendental —
// which is what makes the bound pass cheaper than the max-dot scan it
// replaced.
const (
	rbfExpH    = 0.25
	rbfExpInvH = 1 / rbfExpH
)

var rbfExpUB = func() (t [256]float64) {
	for k := range t {
		t[k] = math.Exp(rbfExpH - float64(k)*rbfExpH)
	}
	return
}()

// fusedRBFSumBoundPortable bounds Σαᵢ·exp(−γ‖xᵢ−x‖²) from above per
// support vector via the rbfExpUB table. The table index γ·d²ᵢ/h is
// computed in strength-reduced form snGHᵢ + b0 − slope·dotᵢ, where
// snGH = γ·snᵢ/h comes precomputed from the index and b0 = γ·nx/h,
// slope = 2γ/h are per-window constants — algebraically equal to the
// exact loop's γ·(snᵢ + nx − 2·dotᵢ) scaled by 1/h, with every rounding
// difference absorbed by the table's whole-step slack. This is the
// reference shape: one accumulator, one support vector at a time.
func fusedRBFSumBoundPortable[T float32 | float64](coef, snGH []float64, dots []T, b0, slope float64) float64 {
	coef = coef[:len(dots)]
	snGH = snGH[:len(dots)]
	var sum float64
	for i := range dots {
		k := int(snGH[i] + b0 - slope*float64(dots[i]))
		if k < 0 {
			k = 0
		} else if k > 255 {
			k = 255
		}
		// k ∈ [0,255] here, so &255 is the identity — it exists to hand
		// the bounds-check prover a range it accepts for the table index.
		sum += coef[i] * rbfExpUB[k&255]
	}
	return sum
}

// fusedRBFSumBound64 is the lane engine's RBF sum bound: four independent
// accumulator chains so the index conversions and table loads of adjacent
// support vectors overlap instead of serializing on one sum. The bound is
// a screen input, not a decision value — summation order is free as long
// as every term is the admissible per-SV bound, which is unchanged.
func fusedRBFSumBound64(coef, snGH, dots []float64, b0, slope float64) float64 {
	coef = coef[:len(dots)]
	snGH = snGH[:len(dots)]
	var s0, s1, s2, s3 float64
	for len(dots) >= 4 && len(snGH) >= 4 && len(coef) >= 4 {
		d, sg, c := dots[:4], snGH[:4], coef[:4]
		k0 := int(sg[0] + b0 - slope*d[0])
		k1 := int(sg[1] + b0 - slope*d[1])
		k2 := int(sg[2] + b0 - slope*d[2])
		k3 := int(sg[3] + b0 - slope*d[3])
		if k0 < 0 {
			k0 = 0
		} else if k0 > 255 {
			k0 = 255
		}
		if k1 < 0 {
			k1 = 0
		} else if k1 > 255 {
			k1 = 255
		}
		if k2 < 0 {
			k2 = 0
		} else if k2 > 255 {
			k2 = 255
		}
		if k3 < 0 {
			k3 = 0
		} else if k3 > 255 {
			k3 = 255
		}
		s0 += c[0] * rbfExpUB[k0&255]
		s1 += c[1] * rbfExpUB[k1&255]
		s2 += c[2] * rbfExpUB[k2&255]
		s3 += c[3] * rbfExpUB[k3&255]
		dots, snGH, coef = dots[4:], snGH[4:], coef[4:]
	}
	s0 += fusedRBFSumBoundPortable(coef, snGH, dots, b0, slope)
	return (s0 + s1) + (s2 + s3)
}

// fusedRBFSumBound32 is fusedRBFSumBound64 over float32 accumulators
// (bounds computed from the very values the float32 exact loop would
// consume).
func fusedRBFSumBound32(coef, snGH []float64, dots []float32, b0, slope float64) float64 {
	coef = coef[:len(dots)]
	snGH = snGH[:len(dots)]
	var s0, s1, s2, s3 float64
	for len(dots) >= 4 && len(snGH) >= 4 && len(coef) >= 4 {
		d, sg, c := dots[:4], snGH[:4], coef[:4]
		k0 := int(sg[0] + b0 - slope*float64(d[0]))
		k1 := int(sg[1] + b0 - slope*float64(d[1]))
		k2 := int(sg[2] + b0 - slope*float64(d[2]))
		k3 := int(sg[3] + b0 - slope*float64(d[3]))
		if k0 < 0 {
			k0 = 0
		} else if k0 > 255 {
			k0 = 255
		}
		if k1 < 0 {
			k1 = 0
		} else if k1 > 255 {
			k1 = 255
		}
		if k2 < 0 {
			k2 = 0
		} else if k2 > 255 {
			k2 = 255
		}
		if k3 < 0 {
			k3 = 0
		} else if k3 > 255 {
			k3 = 255
		}
		s0 += c[0] * rbfExpUB[k0&255]
		s1 += c[1] * rbfExpUB[k1&255]
		s2 += c[2] * rbfExpUB[k2&255]
		s3 += c[3] * rbfExpUB[k3&255]
		dots, snGH, coef = dots[4:], snGH[4:], coef[4:]
	}
	s0 += fusedRBFSumBoundPortable(coef, snGH, dots, b0, slope)
	return (s0 + s1) + (s2 + s3)
}
