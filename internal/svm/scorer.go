package svm

import (
	"math"

	"webtxprofile/internal/sparse"
)

// Scorer evaluates one window against a fixed set of models — the inner
// loop of streaming identification, where every completed window is scored
// against every user profile. Since PR 7 it runs on the fused population
// index: one pass over the window's non-zeros accumulates every model's
// weight dot product and every support vector's dot product at once
// (FusedIndex, now in the feature-blocked lane layout), then a per-model
// epilogue folds the accumulators into decision values. Decisions is
// exact — bit-identical to the per-model path in float64 mode — while
// AcceptMask additionally screens: models whose decision upper bound
// proves they cannot accept skip the scalar kernel loop entirely (the
// screen is admissible, so the mask is still exact).
//
// The index is immutable and shared (every Monitor shard scores through
// the same FusedIndex); the Scorer only owns the per-window scratch —
// accumulators, touch marks, and output buffers. Scratch accumulators are
// cleared by re-walking the window's postings after scoring, so a window
// costs O(matched postings + models), never O(population's support
// vectors). The accumulators carry one spare trailing cell that the
// layout's lane-padding postings target (they add exact zeros there).
//
// A Scorer is not safe for concurrent use; create one per goroutine with
// FusedIndex.NewScorer (they are cheap — the index is shared, read-only).
type Scorer struct {
	ix       *FusedIndex
	portable bool
	vector   bool

	dec []float64
	acc []bool

	// Accumulators, all-zero between windows. wx[mi] collects the linear
	// models' w·x; dots[g] collects global ordinal g's sv·x; the last cell
	// of each is the pad postings' spare target. Exactly one of the
	// float64/float32 pairs is allocated, per FusedConfig.
	wx     []float64
	dots   []float64
	wx32   []float32
	dots32 []float32

	// marks[mi] == epoch iff a support-vector posting of model mi shares
	// a column with the current window (FusedIndex.markOwners) — untouched
	// models hold exact zero dots and take O(1) decisions and screen
	// bounds.
	marks []uint64
	epoch uint64
}

// NewScorer creates a scorer over the given models with its own private
// fused index in exact float64 mode. Loops that need many scorers over
// the same models (one per shard or goroutine) should build one
// FusedIndex and call its NewScorer method instead, sharing the index.
func NewScorer(models []*Model) *Scorer {
	return NewFusedIndex(models, FusedConfig{}).NewScorer()
}

// NewScorer attaches per-window scratch to the shared index. Scorers are
// independent: any number may score concurrently against one index.
func (ix *FusedIndex) NewScorer() *Scorer {
	n := len(ix.models)
	s := &Scorer{
		ix:       ix,
		portable: ix.portable,
		vector:   ix.vector,
		dec:      make([]float64, 0, n),
		acc:      make([]bool, n),
		marks:    make([]uint64, n),
	}
	if ix.cfg.Float32 {
		s.wx32 = make([]float32, n+1)
		s.dots32 = make([]float32, ix.numSVs()+1)
	} else {
		s.wx = make([]float64, n+1)
		s.dots = make([]float64, ix.numSVs()+1)
	}
	return s
}

// Len returns the number of models scored per window.
func (s *Scorer) Len() int { return len(s.ix.models) }

// Model returns the i-th model, in the order passed to NewScorer.
func (s *Scorer) Model(i int) *Model { return s.ix.models[i] }

// accumulate runs the fused pass for x through the resolved engine and
// returns the postings visited (lane-pad slots included).
func (s *Scorer) accumulate(x sparse.Vector) int {
	s.epoch++
	ix := s.ix
	switch {
	case ix.cfg.Float32 && s.portable:
		return ix.lin.accumulatePortable32(x, s.wx32) + ix.sv.accumulatePortable32(x, s.dots32)
	case ix.cfg.Float32 && s.vector:
		return ix.lin.accumulateVector32(x, s.wx32) + ix.sv.accumulateVector32(x, s.dots32)
	case ix.cfg.Float32:
		return ix.lin.accumulate32(x, s.wx32) + ix.sv.accumulate32(x, s.dots32)
	case s.portable:
		return ix.lin.accumulatePortable64(x, s.wx) + ix.sv.accumulatePortable64(x, s.dots)
	case s.vector:
		return ix.lin.accumulateVector64(x, s.wx) + ix.sv.accumulateVector64(x, s.dots)
	default:
		return ix.lin.accumulate64(x, s.wx) + ix.sv.accumulate64(x, s.dots)
	}
}

// clear zeroes the accumulator cells x touched. Sparse windows re-walk
// their postings (O(matched), never O(population)); a window whose
// postings cover at least a quarter of the accumulator cells takes one
// bulk zeroing pass instead — sequential stores beat the walk's scattered
// ones well before the crossover, and since the bulk path only fires when
// cells ≤ 4·visited, clearing stays O(matched postings) either way.
func (s *Scorer) clear(x sparse.Vector, visited int) {
	ix := s.ix
	if ix.cfg.Float32 {
		if visited*4 >= len(s.wx32)+len(s.dots32) {
			for i := range s.wx32 {
				s.wx32[i] = 0
			}
			for i := range s.dots32 {
				s.dots32[i] = 0
			}
			return
		}
		if s.portable {
			ix.lin.clearPortable32(x, s.wx32)
			ix.sv.clearPortable32(x, s.dots32)
		} else {
			ix.lin.clear32(x, s.wx32)
			ix.sv.clear32(x, s.dots32)
		}
		return
	}
	if visited*4 >= len(s.wx)+len(s.dots) {
		for i := range s.wx {
			s.wx[i] = 0
		}
		for i := range s.dots {
			s.dots[i] = 0
		}
		return
	}
	if s.portable {
		ix.lin.clearPortable64(x, s.wx)
		ix.sv.clearPortable64(x, s.dots)
	} else {
		ix.lin.clear64(x, s.wx)
		ix.sv.clear64(x, s.dots)
	}
}

// wxAt returns model mi's accumulated weight dot product as float64.
func (s *Scorer) wxAt(mi int) float64 {
	if s.ix.cfg.Float32 {
		return float64(s.wx32[mi])
	}
	return s.wx[mi]
}

// svDecision returns model mi's exact decision value from the accumulated
// support-vector dots.
func (s *Scorer) svDecision(mi int, nx float64) float64 {
	if s.ix.cfg.Float32 {
		return fusedSVDecision(s.ix, mi, s.dots32, nx)
	}
	return fusedSVDecision(s.ix, mi, s.dots, nx)
}

// Decisions evaluates every model's decision function on x — exactly; no
// screening, so the values are bit-identical (in float64 mode) to scoring
// each model alone. The returned slice is scratch owned by the scorer,
// valid until the next call.
func (s *Scorer) Decisions(x sparse.Vector) []float64 {
	ix := s.ix
	nx := x.NormSq()
	visited := s.accumulate(x)
	fused, fallback := 0, 0
	s.dec = s.dec[:0]
	for mi, m := range ix.models {
		var d float64
		switch ix.kind[mi] {
		case fusedLinear:
			d = fusedLinearDecision(m, s.wxAt(mi), nx)
			fused++
		case fusedSV:
			d = s.svDecision(mi, nx)
			fused++
		default:
			d, _ = m.decisionScratch(x, nx, nil)
			fallback++
		}
		s.dec = append(s.dec, d)
	}
	s.clear(x, visited)
	recordFusedWindow(visited, 0, fused, fallback)
	return s.dec
}

// AcceptMask reports, per model, whether x is accepted (the Accept rule,
// including the boundary tolerance). This is the screened fused path:
// models whose decision upper bound (screenSV) proves rejection skip the
// scalar kernel loop, which is where population-scale scoring spends its
// time — without ever changing the mask, since the bound is admissible.
// The returned slice is scratch owned by the scorer, valid until the next
// call.
func (s *Scorer) AcceptMask(x sparse.Vector) []bool {
	ix := s.ix
	nx := x.NormSq()
	normX := math.Sqrt(nx)
	visited := s.accumulate(x)
	ix.markOwners(x, s.marks, s.epoch)
	screened, fused, fallback := 0, 0, 0
	for mi, m := range ix.models {
		switch ix.kind[mi] {
		case fusedLinear:
			s.acc[mi] = m.acceptsValue(fusedLinearDecision(m, s.wxAt(mi), nx))
			fused++
		case fusedSV:
			fused++
			if s.screenSV(mi, s.marks[mi] == s.epoch, nx, normX) {
				s.acc[mi] = false
				screened++
				continue
			}
			s.acc[mi] = m.acceptsValue(s.svDecision(mi, nx))
		default:
			d, _ := m.decisionScratch(x, nx, nil)
			s.acc[mi] = m.acceptsValue(d)
			fallback++
		}
	}
	s.clear(x, visited)
	recordFusedWindow(visited, screened, fused, fallback)
	return s.acc
}

// DecisionBatch evaluates every model's decision function on x, appending
// to out (which may be nil; pass out[:0] to reuse a buffer across calls).
// This is the pre-fused per-model path — each model walks the window
// through its own index — kept as the reference baseline the fused engine
// is verified and benchmarked against. Loops that score many windows
// against the same models should prefer a Scorer.
func DecisionBatch(models []*Model, x sparse.Vector, out []float64) []float64 {
	nx := x.NormSq()
	bufp := dotsPool.Get().(*[]float64)
	dots := *bufp
	for _, m := range models {
		var d float64
		d, dots = m.decisionScratch(x, nx, dots)
		out = append(out, d)
	}
	*bufp = dots
	dotsPool.Put(bufp)
	return out
}
