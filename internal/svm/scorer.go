package svm

import "webtxprofile/internal/sparse"

// Scorer evaluates one window against a fixed set of models — the inner
// loop of streaming identification, where every completed window is scored
// against every user profile. It owns reusable scratch buffers (including
// the dot-product accumulator the inverted support-vector index writes
// into, shared across all models) so the hot path allocates nothing per
// window, and it computes ‖x‖² once per window instead of once per model.
//
// Each model carries its own prepared decision cache — the linear weight
// vector or the inverted SV index, both built once at Train/Validate time —
// so models that appear in many scorers (every Monitor shard references the
// same profile models) share one index; the scorer only adds the per-window
// scratch.
//
// A Scorer is not safe for concurrent use; create one per goroutine (they
// are cheap — the models themselves are shared, read-only).
type Scorer struct {
	models []*Model
	dec    []float64
	acc    []bool
	dots   []float64 // indexed-path accumulator, sized to the largest model
}

// NewScorer creates a scorer over the given models. The models are not
// copied or mutated; prepare them (Train, UnmarshalJSON or Validate all
// do) to enable the kernel fast paths.
func NewScorer(models []*Model) *Scorer {
	maxSVs := 0
	for _, m := range models {
		if m != nil && m.idx != nil && m.idx.nsv > maxSVs {
			maxSVs = m.idx.nsv
		}
	}
	return &Scorer{
		models: models,
		dec:    make([]float64, len(models)),
		acc:    make([]bool, len(models)),
		dots:   make([]float64, maxSVs),
	}
}

// Len returns the number of models scored per window.
func (s *Scorer) Len() int { return len(s.models) }

// Model returns the i-th model, in the order passed to NewScorer.
func (s *Scorer) Model(i int) *Model { return s.models[i] }

// Decisions evaluates every model's decision function on x. The returned
// slice is scratch owned by the scorer, valid until the next call.
func (s *Scorer) Decisions(x sparse.Vector) []float64 {
	nx := x.NormSq()
	s.dec = s.dec[:0]
	for _, m := range s.models {
		var d float64
		d, s.dots = m.decisionScratch(x, nx, s.dots)
		s.dec = append(s.dec, d)
	}
	return s.dec
}

// AcceptMask reports, per model, whether x is accepted (the Accept rule,
// including the boundary tolerance). The returned slice is scratch owned
// by the scorer, valid until the next call.
func (s *Scorer) AcceptMask(x sparse.Vector) []bool {
	dec := s.Decisions(x)
	for i, m := range s.models {
		s.acc[i] = m.acceptsValue(dec[i])
	}
	return s.acc
}

// DecisionBatch evaluates every model's decision function on x, appending
// to out (which may be nil; pass out[:0] to reuse a buffer across calls).
// The dot-product accumulator of the indexed path is pooled across calls;
// loops that score many windows against the same models should prefer a
// Scorer, which keeps that scratch alive without pool traffic.
func DecisionBatch(models []*Model, x sparse.Vector, out []float64) []float64 {
	nx := x.NormSq()
	bufp := dotsPool.Get().(*[]float64)
	dots := *bufp
	for _, m := range models {
		var d float64
		d, dots = m.decisionScratch(x, nx, dots)
		out = append(out, d)
	}
	*bufp = dots
	dotsPool.Put(bufp)
	return out
}
