package svm

import "webtxprofile/internal/sparse"

// Scorer evaluates one window against a fixed set of models — the inner
// loop of streaming identification, where every completed window is scored
// against every user profile. It owns reusable scratch buffers so the hot
// path allocates nothing per window, and it computes ‖x‖² once per window
// instead of once per model.
//
// A Scorer is not safe for concurrent use; create one per goroutine (they
// are cheap — the models themselves are shared, read-only).
type Scorer struct {
	models []*Model
	dec    []float64
	acc    []bool
}

// NewScorer creates a scorer over the given models. The models are not
// copied or mutated; prepare them (Train, UnmarshalJSON or Validate all
// do) to enable the linear-kernel fast path.
func NewScorer(models []*Model) *Scorer {
	return &Scorer{
		models: models,
		dec:    make([]float64, len(models)),
		acc:    make([]bool, len(models)),
	}
}

// Len returns the number of models scored per window.
func (s *Scorer) Len() int { return len(s.models) }

// Model returns the i-th model, in the order passed to NewScorer.
func (s *Scorer) Model(i int) *Model { return s.models[i] }

// Decisions evaluates every model's decision function on x. The returned
// slice is scratch owned by the scorer, valid until the next call.
func (s *Scorer) Decisions(x sparse.Vector) []float64 {
	s.dec = DecisionBatch(s.models, x, s.dec[:0])
	return s.dec
}

// AcceptMask reports, per model, whether x is accepted (the Accept rule,
// including the boundary tolerance). The returned slice is scratch owned
// by the scorer, valid until the next call.
func (s *Scorer) AcceptMask(x sparse.Vector) []bool {
	dec := s.Decisions(x)
	for i, m := range s.models {
		s.acc[i] = m.acceptsValue(dec[i])
	}
	return s.acc
}

// DecisionBatch evaluates every model's decision function on x, appending
// to out (which may be nil; pass out[:0] to reuse a buffer across calls).
func DecisionBatch(models []*Model, x sparse.Vector, out []float64) []float64 {
	nx := x.NormSq()
	for _, m := range models {
		out = append(out, m.decision(x, nx))
	}
	return out
}
