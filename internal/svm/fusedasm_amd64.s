#include "textflag.h"

// func accumGroup64(ord *int32, val *float64, n int, w float64, acc *float64)
//
// Per lane of 8 postings: gather acc[ord[k]], add w*val[k] (separate
// multiply and add — see fusedasm_amd64.go for why FMA would break
// bit-identity), scatter back. The scatter instructions consume their
// mask register, so it is reloaded every lane.
//
// Lanes are software-pipelined two at a time: both gathers issue before
// either scatter, hiding the gather→scatter dependency chain that
// otherwise serializes the loop (the cells are random within the
// accumulator block, so the chain is latency-bound). Hoisting the second
// gather is safe because a real ordinal appears at most once per group,
// only a group's final lane carries pads, and a pad's value is zero — the
// second lane never reads a cell the first lane's scatter changes, so the
// per-cell arithmetic (and hence bit-identity) is untouched.
TEXT ·accumGroup64(SB), NOSPLIT, $0-40
	MOVQ ord+0(FP), SI
	MOVQ val+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ acc+32(FP), AX
	VBROADCASTSD w+24(FP), Z0
	SHRQ $3, CX
	MOVL $0xFF, DX
pair64:
	CMPQ CX, $2
	JLT  loop64
	VMOVDQU (SI), Y1
	VMOVDQU 32(SI), Y11
	KMOVW   DX, K1
	VGATHERDPD (AX)(Y1*8), K1, Z3
	KMOVW   DX, K3
	VGATHERDPD (AX)(Y11*8), K3, Z13
	VMOVUPD (DI), Z2
	VMULPD  Z2, Z0, Z2
	VADDPD  Z2, Z3, Z3
	VMOVUPD 64(DI), Z12
	VMULPD  Z12, Z0, Z12
	VADDPD  Z12, Z13, Z13
	KMOVW   DX, K2
	VSCATTERDPD Z3, K2, (AX)(Y1*8)
	KMOVW   DX, K4
	VSCATTERDPD Z13, K4, (AX)(Y11*8)
	ADDQ $64, SI
	ADDQ $128, DI
	SUBQ $2, CX
	JMP  pair64
loop64:
	TESTQ CX, CX
	JZ    done64
	VMOVDQU (SI), Y1
	KMOVW   DX, K1
	VGATHERDPD (AX)(Y1*8), K1, Z3
	VMOVUPD (DI), Z2
	VMULPD  Z2, Z0, Z2
	VADDPD  Z2, Z3, Z3
	KMOVW   DX, K2
	VSCATTERDPD Z3, K2, (AX)(Y1*8)
	ADDQ $32, SI
	ADDQ $64, DI
	DECQ CX
	JMP  loop64
done64:
	VZEROUPPER
	RET

DATA rbfBoundMax<>+0(SB)/4, $0x000000ff
GLOBL rbfBoundMax<>(SB), RODATA, $4

// func rbfSumBound64(coef, snGH, dots *float64, n int, b0, slope float64) float64
//
// Eight support vectors per iteration of the screening-bound reduction:
// z = (snGH + b0) - slope*dots elementwise (same operation order and
// rounding as the scalar loop), truncate to int32, clamp to [0,255],
// gather the exp upper bounds from rbfExpUB (2 KB, L1-resident), and
// multiply-accumulate with coef. Only the final summation order differs
// from the scalar loop, which the bound's one-whole-step slack absorbs
// (see rbfExpUB) — the bound stays admissible, which is all screening
// needs. n must be a multiple of 8 (the Go wrapper handles the tail).
//
// Iterations run two lanes at a time into independent accumulators
// (Z9, Z19), breaking the single add-chain that otherwise bounds the
// loop at one lane per VADDPD latency; the accumulators merge before the
// horizontal reduce. That is one more reassociation of the same
// nonnegative upper-bound terms, absorbed by the same slack argument.
// The per-element table indices stay bit-identical to the scalar loop.
TEXT ·rbfSumBound64(SB), NOSPLIT, $0-56
	MOVQ coef+0(FP), SI
	MOVQ snGH+8(FP), DI
	MOVQ dots+16(FP), BX
	MOVQ n+24(FP), CX
	VBROADCASTSD b0+32(FP), Z0
	VBROADCASTSD slope+40(FP), Z1
	LEAQ ·rbfExpUB(SB), R8
	SHRQ $3, CX
	MOVL $0xFF, AX
	VPXOR X5, X5, X5
	VPBROADCASTD rbfBoundMax<>(SB), Y6
	VXORPD X9, X9, X9
	VPXORQ Z19, Z19, Z19
pairb64:
	CMPQ CX, $2
	JLT  loopb64
	VMOVUPD (DI), Z3
	VADDPD  Z0, Z3, Z3
	VMOVUPD (BX), Z2
	VMULPD  Z1, Z2, Z2
	VSUBPD  Z2, Z3, Z3
	VMOVUPD 64(DI), Z13
	VADDPD  Z0, Z13, Z13
	VMOVUPD 64(BX), Z12
	VMULPD  Z1, Z12, Z12
	VSUBPD  Z12, Z13, Z13
	VCVTTPD2DQ Z3, Y4
	VPMAXSD Y5, Y4, Y4
	VPMINSD Y6, Y4, Y4
	VCVTTPD2DQ Z13, Y14
	VPMAXSD Y5, Y14, Y14
	VPMINSD Y6, Y14, Y14
	KMOVW   AX, K1
	VGATHERDPD (R8)(Y4*8), K1, Z7
	KMOVW   AX, K2
	VGATHERDPD (R8)(Y14*8), K2, Z17
	VMOVUPD (SI), Z8
	VMULPD  Z7, Z8, Z8
	VADDPD  Z8, Z9, Z9
	VMOVUPD 64(SI), Z18
	VMULPD  Z17, Z18, Z18
	VADDPD  Z18, Z19, Z19
	ADDQ $128, SI
	ADDQ $128, DI
	ADDQ $128, BX
	SUBQ $2, CX
	JMP  pairb64
loopb64:
	TESTQ CX, CX
	JZ    doneb64
	VMOVUPD (DI), Z3
	VADDPD  Z0, Z3, Z3
	VMOVUPD (BX), Z2
	VMULPD  Z1, Z2, Z2
	VSUBPD  Z2, Z3, Z3
	VCVTTPD2DQ Z3, Y4
	VPMAXSD Y5, Y4, Y4
	VPMINSD Y6, Y4, Y4
	KMOVW   AX, K1
	VGATHERDPD (R8)(Y4*8), K1, Z7
	VMOVUPD (SI), Z8
	VMULPD  Z7, Z8, Z8
	VADDPD  Z8, Z9, Z9
	ADDQ $64, SI
	ADDQ $64, DI
	ADDQ $64, BX
	DECQ CX
	JMP  loopb64
doneb64:
	VADDPD Z19, Z9, Z9
	VEXTRACTF64X4 $1, Z9, Y10
	VADDPD Y10, Y9, Y9
	VEXTRACTF128 $1, Y9, X10
	VADDPD X10, X9, X9
	VPERMILPD $1, X9, X10
	VADDSD X10, X9, X9
	VZEROUPPER
	MOVSD X9, ret+48(FP)
	RET

// func rbfSumBound32(coef, snGH *float64, dots *float32, n int, b0, slope float64) float64
//
// rbfSumBound64 with the dots stream widened from float32 on load
// (VCVTPS2PD is exact, matching the scalar loop's float64(dots[i]));
// same two-lane pipelining into independent accumulators.
TEXT ·rbfSumBound32(SB), NOSPLIT, $0-56
	MOVQ coef+0(FP), SI
	MOVQ snGH+8(FP), DI
	MOVQ dots+16(FP), BX
	MOVQ n+24(FP), CX
	VBROADCASTSD b0+32(FP), Z0
	VBROADCASTSD slope+40(FP), Z1
	LEAQ ·rbfExpUB(SB), R8
	SHRQ $3, CX
	MOVL $0xFF, AX
	VPXOR X5, X5, X5
	VPBROADCASTD rbfBoundMax<>(SB), Y6
	VXORPD X9, X9, X9
	VPXORQ Z19, Z19, Z19
pairb32:
	CMPQ CX, $2
	JLT  loopb32
	VMOVUPD (DI), Z3
	VADDPD  Z0, Z3, Z3
	VCVTPS2PD (BX), Z2
	VMULPD  Z1, Z2, Z2
	VSUBPD  Z2, Z3, Z3
	VMOVUPD 64(DI), Z13
	VADDPD  Z0, Z13, Z13
	VCVTPS2PD 32(BX), Z12
	VMULPD  Z1, Z12, Z12
	VSUBPD  Z12, Z13, Z13
	VCVTTPD2DQ Z3, Y4
	VPMAXSD Y5, Y4, Y4
	VPMINSD Y6, Y4, Y4
	VCVTTPD2DQ Z13, Y14
	VPMAXSD Y5, Y14, Y14
	VPMINSD Y6, Y14, Y14
	KMOVW   AX, K1
	VGATHERDPD (R8)(Y4*8), K1, Z7
	KMOVW   AX, K2
	VGATHERDPD (R8)(Y14*8), K2, Z17
	VMOVUPD (SI), Z8
	VMULPD  Z7, Z8, Z8
	VADDPD  Z8, Z9, Z9
	VMOVUPD 64(SI), Z18
	VMULPD  Z17, Z18, Z18
	VADDPD  Z18, Z19, Z19
	ADDQ $128, SI
	ADDQ $128, DI
	ADDQ $64, BX
	SUBQ $2, CX
	JMP  pairb32
loopb32:
	TESTQ CX, CX
	JZ    doneb32
	VMOVUPD (DI), Z3
	VADDPD  Z0, Z3, Z3
	VCVTPS2PD (BX), Z2
	VMULPD  Z1, Z2, Z2
	VSUBPD  Z2, Z3, Z3
	VCVTTPD2DQ Z3, Y4
	VPMAXSD Y5, Y4, Y4
	VPMINSD Y6, Y4, Y4
	KMOVW   AX, K1
	VGATHERDPD (R8)(Y4*8), K1, Z7
	VMOVUPD (SI), Z8
	VMULPD  Z7, Z8, Z8
	VADDPD  Z8, Z9, Z9
	ADDQ $64, SI
	ADDQ $64, DI
	ADDQ $32, BX
	DECQ CX
	JMP  loopb32
doneb32:
	VADDPD Z19, Z9, Z9
	VEXTRACTF64X4 $1, Z9, Y10
	VADDPD Y10, Y9, Y9
	VEXTRACTF128 $1, Y9, X10
	VADDPD X10, X9, X9
	VPERMILPD $1, X9, X10
	VADDSD X10, X9, X9
	VZEROUPPER
	MOVSD X9, ret+48(FP)
	RET

// func accumGroup32(ord *int32, val *float32, n int, w float32, acc *float32)
//
// Same shape over 16-posting float32 lanes, with the same two-lane
// software pipelining (both gathers before either scatter; safe for the
// same disjointness reasons as accumGroup64).
TEXT ·accumGroup32(SB), NOSPLIT, $0-40
	MOVQ ord+0(FP), SI
	MOVQ val+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ acc+32(FP), AX
	VBROADCASTSS w+24(FP), Z0
	SHRQ $4, CX
	MOVL $0xFFFF, DX
pair32:
	CMPQ CX, $2
	JLT  loop32
	VMOVDQU32 (SI), Z1
	VMOVDQU32 64(SI), Z11
	KMOVW     DX, K1
	VGATHERDPS (AX)(Z1*4), K1, Z3
	KMOVW     DX, K3
	VGATHERDPS (AX)(Z11*4), K3, Z13
	VMOVUPS (DI), Z2
	VMULPS  Z2, Z0, Z2
	VADDPS  Z2, Z3, Z3
	VMOVUPS 64(DI), Z12
	VMULPS  Z12, Z0, Z12
	VADDPS  Z12, Z13, Z13
	KMOVW   DX, K2
	VSCATTERDPS Z3, K2, (AX)(Z1*4)
	KMOVW   DX, K4
	VSCATTERDPS Z13, K4, (AX)(Z11*4)
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $2, CX
	JMP  pair32
loop32:
	TESTQ CX, CX
	JZ    done32
	VMOVDQU32 (SI), Z1
	KMOVW     DX, K1
	VGATHERDPS (AX)(Z1*4), K1, Z3
	VMOVUPS (DI), Z2
	VMULPS  Z2, Z0, Z2
	VADDPS  Z2, Z3, Z3
	KMOVW   DX, K2
	VSCATTERDPS Z3, K2, (AX)(Z1*4)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ CX
	JMP  loop32
done32:
	VZEROUPPER
	RET
