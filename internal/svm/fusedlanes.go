package svm

import "webtxprofile/internal/sparse"

// The accumulate/clear kernels of the fused engine, over the blocked
// lane-padded layout (blockedPostings). Three engines share the layout:
//
//   - The packed kernels (accumulateVector64/accumulateVector32) run the
//     same block/column walk but hand each lane-padded group to the
//     AVX-512 gather–multiply–add–scatter routines in fusedasm_amd64.s.
//     KernelsAuto resolves to them when the CPU supports AVX-512F.
//   - The lane kernels (accumulate64/accumulate32, clear64/clear32) are
//     straight-line unrolled over whole lanes — one 64-byte line of values
//     and its ordinals per iteration, no remainder handling (padding
//     guarantees full lanes). They are the shape the packed kernels
//     consume, in portable Go, and the KernelsAuto engine everywhere
//     AVX-512 is unavailable.
//   - The portable kernels run the obvious per-posting loop over the very
//     same postings in the very same order (KernelsPortable).
//
// All three produce bit-identical float64 (and float32) accumulators:
// per (column, accumulator) there is at most one posting, every engine
// visits groups in the same order, and the packed kernels round the
// multiply and the add separately exactly like the Go ones.
//
// Blocks are the outer loop and the window's columns the inner one, so
// every scattered accumulator write of an iteration lands inside one
// cache-resident block span. The scatter index is data-dependent, so these
// loops keep their bounds checks (the dense per-model passes that must be
// bounds-check-free live in fusedkernels.go, which CI gates).

func (pb *blockedPostings) accumulate64(x sparse.Vector, acc []float64) int {
	ncols := pb.ncols
	if ncols <= 0 {
		return 0
	}
	xi, xv := x.Idx, x.Val
	if len(xi) > len(xv) {
		xi = xi[:len(xv)]
	}
	visited := 0
	for b := 0; b < int(pb.nblocks); b++ {
		row := pb.starts[b*int(ncols) : b*int(ncols)+int(ncols)+1]
		for k := range xi {
			c := xi[k]
			if c >= ncols {
				break // x.Idx is sorted: everything after is out of range too
			}
			s, e := row[c], row[c+1]
			if s == e {
				continue
			}
			visited += int(e - s)
			w := xv[k]
			ord := pb.ord[s:e]
			val := pb.val[s:e]
			for len(ord) >= laneWidth64 && len(val) >= laneWidth64 {
				o, v := ord[:laneWidth64], val[:laneWidth64]
				acc[o[0]] += w * v[0]
				acc[o[1]] += w * v[1]
				acc[o[2]] += w * v[2]
				acc[o[3]] += w * v[3]
				acc[o[4]] += w * v[4]
				acc[o[5]] += w * v[5]
				acc[o[6]] += w * v[6]
				acc[o[7]] += w * v[7]
				ord, val = ord[laneWidth64:], val[laneWidth64:]
			}
		}
	}
	return visited
}

func (pb *blockedPostings) accumulate32(x sparse.Vector, acc []float32) int {
	ncols := pb.ncols
	if ncols <= 0 {
		return 0
	}
	xi, xv := x.Idx, x.Val
	if len(xi) > len(xv) {
		xi = xi[:len(xv)]
	}
	visited := 0
	for b := 0; b < int(pb.nblocks); b++ {
		row := pb.starts[b*int(ncols) : b*int(ncols)+int(ncols)+1]
		for k := range xi {
			c := xi[k]
			if c >= ncols {
				break
			}
			s, e := row[c], row[c+1]
			if s == e {
				continue
			}
			visited += int(e - s)
			w := float32(xv[k])
			ord := pb.ord[s:e]
			val := pb.val32[s:e]
			for len(ord) >= laneWidth32 && len(val) >= laneWidth32 {
				o, v := ord[:laneWidth32], val[:laneWidth32]
				acc[o[0]] += w * v[0]
				acc[o[1]] += w * v[1]
				acc[o[2]] += w * v[2]
				acc[o[3]] += w * v[3]
				acc[o[4]] += w * v[4]
				acc[o[5]] += w * v[5]
				acc[o[6]] += w * v[6]
				acc[o[7]] += w * v[7]
				acc[o[8]] += w * v[8]
				acc[o[9]] += w * v[9]
				acc[o[10]] += w * v[10]
				acc[o[11]] += w * v[11]
				acc[o[12]] += w * v[12]
				acc[o[13]] += w * v[13]
				acc[o[14]] += w * v[14]
				acc[o[15]] += w * v[15]
				ord, val = ord[laneWidth32:], val[laneWidth32:]
			}
		}
	}
	return visited
}

// accumulateVector64 is the packed engine: the same walk as accumulate64,
// with each group's lanes processed by the AVX-512 kernel.
func (pb *blockedPostings) accumulateVector64(x sparse.Vector, acc []float64) int {
	ncols := pb.ncols
	if ncols <= 0 {
		return 0
	}
	xi, xv := x.Idx, x.Val
	if len(xi) > len(xv) {
		xi = xi[:len(xv)]
	}
	visited := 0
	for b := 0; b < int(pb.nblocks); b++ {
		row := pb.starts[b*int(ncols) : b*int(ncols)+int(ncols)+1]
		for k := range xi {
			c := xi[k]
			if c >= ncols {
				break
			}
			s, e := row[c], row[c+1]
			if s == e {
				continue
			}
			visited += int(e - s)
			accumGroup64(&pb.ord[s], &pb.val[s], int(e-s), xv[k], &acc[0])
		}
	}
	return visited
}

func (pb *blockedPostings) accumulateVector32(x sparse.Vector, acc []float32) int {
	ncols := pb.ncols
	if ncols <= 0 {
		return 0
	}
	xi, xv := x.Idx, x.Val
	if len(xi) > len(xv) {
		xi = xi[:len(xv)]
	}
	visited := 0
	for b := 0; b < int(pb.nblocks); b++ {
		row := pb.starts[b*int(ncols) : b*int(ncols)+int(ncols)+1]
		for k := range xi {
			c := xi[k]
			if c >= ncols {
				break
			}
			s, e := row[c], row[c+1]
			if s == e {
				continue
			}
			visited += int(e - s)
			accumGroup32(&pb.ord[s], &pb.val32[s], int(e-s), float32(xv[k]), &acc[0])
		}
	}
	return visited
}

// clear64 re-walks exactly the postings accumulate64 touched for x and
// zeroes their accumulator cells, leaving the scratch all-zero again in
// O(matched postings) instead of O(population).
func (pb *blockedPostings) clear64(x sparse.Vector, acc []float64) {
	ncols := pb.ncols
	if ncols <= 0 {
		return
	}
	for b := 0; b < int(pb.nblocks); b++ {
		row := pb.starts[b*int(ncols) : b*int(ncols)+int(ncols)+1]
		for _, c := range x.Idx {
			if c >= ncols {
				break
			}
			ord := pb.ord[row[c]:row[c+1]]
			for len(ord) >= laneWidth64 {
				o := ord[:laneWidth64]
				acc[o[0]] = 0
				acc[o[1]] = 0
				acc[o[2]] = 0
				acc[o[3]] = 0
				acc[o[4]] = 0
				acc[o[5]] = 0
				acc[o[6]] = 0
				acc[o[7]] = 0
				ord = ord[laneWidth64:]
			}
		}
	}
}

func (pb *blockedPostings) clear32(x sparse.Vector, acc []float32) {
	ncols := pb.ncols
	if ncols <= 0 {
		return
	}
	for b := 0; b < int(pb.nblocks); b++ {
		row := pb.starts[b*int(ncols) : b*int(ncols)+int(ncols)+1]
		for _, c := range x.Idx {
			if c >= ncols {
				break
			}
			ord := pb.ord[row[c]:row[c+1]]
			for len(ord) >= laneWidth32 {
				o := ord[:laneWidth32]
				acc[o[0]] = 0
				acc[o[1]] = 0
				acc[o[2]] = 0
				acc[o[3]] = 0
				acc[o[4]] = 0
				acc[o[5]] = 0
				acc[o[6]] = 0
				acc[o[7]] = 0
				acc[o[8]] = 0
				acc[o[9]] = 0
				acc[o[10]] = 0
				acc[o[11]] = 0
				acc[o[12]] = 0
				acc[o[13]] = 0
				acc[o[14]] = 0
				acc[o[15]] = 0
				ord = ord[laneWidth32:]
			}
		}
	}
}

// accumulatePortable64 is the reference engine: the same blocked walk,
// one posting at a time. Per-accumulator term order is identical to
// accumulate64, so float64 results are bit-identical.
func (pb *blockedPostings) accumulatePortable64(x sparse.Vector, acc []float64) int {
	ncols := pb.ncols
	if ncols <= 0 {
		return 0
	}
	visited := 0
	for b := 0; b < int(pb.nblocks); b++ {
		row := pb.starts[b*int(ncols) : b*int(ncols)+int(ncols)+1]
		for k, c := range x.Idx {
			if c >= ncols {
				break
			}
			s, e := row[c], row[c+1]
			if s == e {
				continue
			}
			visited += int(e - s)
			w := x.Val[k]
			for p := s; p < e; p++ {
				acc[pb.ord[p]] += w * pb.val[p]
			}
		}
	}
	return visited
}

func (pb *blockedPostings) accumulatePortable32(x sparse.Vector, acc []float32) int {
	ncols := pb.ncols
	if ncols <= 0 {
		return 0
	}
	visited := 0
	for b := 0; b < int(pb.nblocks); b++ {
		row := pb.starts[b*int(ncols) : b*int(ncols)+int(ncols)+1]
		for k, c := range x.Idx {
			if c >= ncols {
				break
			}
			s, e := row[c], row[c+1]
			if s == e {
				continue
			}
			visited += int(e - s)
			w := float32(x.Val[k])
			for p := s; p < e; p++ {
				acc[pb.ord[p]] += w * pb.val32[p]
			}
		}
	}
	return visited
}

func (pb *blockedPostings) clearPortable64(x sparse.Vector, acc []float64) {
	ncols := pb.ncols
	if ncols <= 0 {
		return
	}
	for b := 0; b < int(pb.nblocks); b++ {
		row := pb.starts[b*int(ncols) : b*int(ncols)+int(ncols)+1]
		for _, c := range x.Idx {
			if c >= ncols {
				break
			}
			for p := row[c]; p < row[c+1]; p++ {
				acc[pb.ord[p]] = 0
			}
		}
	}
}

func (pb *blockedPostings) clearPortable32(x sparse.Vector, acc []float32) {
	ncols := pb.ncols
	if ncols <= 0 {
		return
	}
	for b := 0; b < int(pb.nblocks); b++ {
		row := pb.starts[b*int(ncols) : b*int(ncols)+int(ncols)+1]
		for _, c := range x.Idx {
			if c >= ncols {
				break
			}
			for p := row[c]; p < row[c+1]; p++ {
				acc[pb.ord[p]] = 0
			}
		}
	}
}
