package svm

// The AVX-512 accumulate kernels: one call processes one lane-padded
// (block, column) postings group, gathering the group's accumulator cells,
// multiplying the value lane by the window weight, and scattering the sums
// back — the straight-line packed form of the Go lane kernels, consuming
// the exact same layout.
//
// Two invariants of the blocked layout make the scatter safe and the
// result bit-identical to the Go kernels:
//
//   - Within a group, real postings carry strictly ascending ordinals, so
//     a scatter's indices never conflict. Only lane-padding slots repeat
//     an ordinal (the spare), and their value is exactly zero, so every
//     duplicate lane writes back the unchanged spare cell.
//   - The kernels use separate multiply and add instructions, not FMA:
//     Go's `acc[o] += w * v` rounds the product and the sum separately,
//     and a fused multiply-add would differ in the last bit. Each
//     accumulator still receives its terms in group order, so float64
//     (and float32) results are bit-identical across all three engines.
//
// n must be a multiple of the lane width (8 for float64, 16 for float32);
// buildBlocked pads every group to guarantee it.
//
//go:noescape
func accumGroup64(ord *int32, val *float64, n int, w float64, acc *float64)

//go:noescape
func accumGroup32(ord *int32, val *float32, n int, w float32, acc *float32)

// The packed RBF screening-bound reductions. z indices are elementwise
// bit-identical to the scalar loops (same operation order, truncating
// conversion, and clamp); only the final summation order differs, which
// the bound's built-in slack absorbs — admissibility, the only property
// screening needs, holds for every engine. n must be a multiple of 8; the
// wrappers below run the remainder through the scalar loop.
//
//go:noescape
func rbfSumBound64(coef, snGH, dots *float64, n int, b0, slope float64) float64

//go:noescape
func rbfSumBound32(coef, snGH *float64, dots *float32, n int, b0, slope float64) float64

// fusedRBFSumBoundVec64 is the packed engine's screening bound: the
// AVX-512 reduction over whole lanes, the scalar loop over the tail.
func fusedRBFSumBoundVec64(coef, snGH, dots []float64, b0, slope float64) float64 {
	n := len(dots)
	nd := n &^ 7
	var sum float64
	if nd > 0 {
		sum = rbfSumBound64(&coef[0], &snGH[0], &dots[0], nd, b0, slope)
	}
	if nd < n {
		sum += fusedRBFSumBoundPortable(coef[nd:n], snGH[nd:n], dots[nd:n], b0, slope)
	}
	return sum
}

func fusedRBFSumBoundVec32(coef, snGH []float64, dots []float32, b0, slope float64) float64 {
	n := len(dots)
	nd := n &^ 7
	var sum float64
	if nd > 0 {
		sum = rbfSumBound32(&coef[0], &snGH[0], &dots[0], nd, b0, slope)
	}
	if nd < n {
		sum += fusedRBFSumBoundPortable(coef[nd:n], snGH[nd:n], dots[nd:n], b0, slope)
	}
	return sum
}

// disablePackedKernels forces KernelsAuto to resolve to the Go lane
// kernels even where AVX-512 is available. Tests flip it to compare the
// packed and lane engines on the same machine; it must be set before any
// NewFusedIndex call whose scorers it should affect.
var disablePackedKernels bool

// asmKernelsSupported reports whether the packed kernels can run: they
// need AVX-512F (gather, scatter, 512-bit arithmetic), and the detection
// in cpu_amd64.go only reports it when the OS saves ZMM state.
func asmKernelsSupported() bool {
	for _, f := range cpuFeatureList {
		if f == "avx512f" {
			return true
		}
	}
	return false
}
