package webtxprofile_test

import (
	"bytes"
	"testing"
	"time"

	"webtxprofile"
)

// integrationConfig is a compact generation config shared by the
// cross-module integration tests.
func integrationConfig() webtxprofile.SynthConfig {
	cfg := webtxprofile.DefaultSynthConfig()
	cfg.Users = 6
	cfg.SmallUsers = 1
	cfg.Devices = 5
	cfg.Weeks = 3
	cfg.Services = 150
	cfg.Archetypes = 6
	cfg.ConfusableUsers = 2
	cfg.ServicesPerUserMin = 10
	cfg.ServicesPerUserMax = 18
	cfg.WeeklyTxMedian = 1600
	cfg.WeeklyTxSigma = 0.4
	return cfg
}

func trainConfig() webtxprofile.Config {
	return webtxprofile.Config{MaxTrainWindows: 300, Workers: 2}
}

func TestEndToEndPipeline(t *testing.T) {
	ds, err := webtxprofile.GenerateDataset(integrationConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Log round trip: the dataset must survive serialization.
	var buf bytes.Buffer
	if err := webtxprofile.WriteLog(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := webtxprofile.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("log round trip lost records: %d != %d", back.Len(), ds.Len())
	}

	set, test, err := webtxprofile.Train(back, trainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Users()) != 5 {
		t.Fatalf("profiled users = %v", set.Users())
	}

	cm, err := set.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	mean := cm.Mean()
	if mean.Self < 0.6 || mean.ACC() < 0.35 {
		t.Errorf("differentiation quality: %v", mean)
	}

	// Confusable pair: users 1 and 2 share an archetype, so their mutual
	// acceptance should clearly exceed the mean off-diagonal level.
	idx := map[string]int{}
	for i, u := range cm.Users {
		idx[u] = i
	}
	pair := cm.Ratio[idx["user_1"]][idx["user_2"]] + cm.Ratio[idx["user_2"]][idx["user_1"]]
	if pair/2 <= mean.Other {
		t.Errorf("confusable pair acceptance %.3f not above mean other %.3f", pair/2, mean.Other)
	}
}

func TestProfilePersistenceAcrossFacade(t *testing.T) {
	ds, err := webtxprofile.GenerateDataset(integrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	set, test, err := webtxprofile.Train(ds, trainConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := webtxprofile.LoadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cm1, err := set.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	cm2, err := restored.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cm1.Ratio {
		for j := range cm1.Ratio[i] {
			if cm1.Ratio[i][j] != cm2.Ratio[i][j] {
				t.Fatalf("confusion drift after reload at [%d][%d]", i, j)
			}
		}
	}
}

func TestDeviceScenarioIdentification(t *testing.T) {
	cfg := integrationConfig()
	ds, err := webtxprofile.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	set, _, err := webtxprofile.Train(ds, trainConfig())
	if err != nil {
		t.Fatal(err)
	}
	users := set.Users()
	// Fig. 3 scenario: three users take turns on one device.
	scenarioStart := cfg.Start.Add(time.Duration(cfg.Weeks) * 7 * 24 * time.Hour)
	scenario, err := webtxprofile.GenerateDeviceScenario(cfg, "10.9.9.9", scenarioStart, []webtxprofile.SynthSegment{
		{UserID: users[0], Offset: 0, Length: 40 * time.Minute},
		{UserID: users[3], Offset: 40 * time.Minute, Length: 30 * time.Minute},
		{UserID: users[4], Offset: 70 * time.Minute, Length: 30 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := set.IdentifyHost(scenario, "10.9.9.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) < 100 {
		t.Fatalf("timeline has only %d windows", len(tl))
	}
	// The true user's model should accept most of their own windows.
	correct := 0
	for _, pt := range tl {
		for _, u := range pt.Accepted {
			if u == pt.ActualUser {
				correct++
				break
			}
		}
	}
	if frac := float64(correct) / float64(len(tl)); frac < 0.6 {
		t.Errorf("true user accepted in only %.2f of windows", frac)
	}
	// Consecutive-window identification should find the first user.
	u, idx, ok := webtxprofile.IdentifyConsecutive(tl, 5)
	if !ok {
		t.Fatal("no user identified")
	}
	if u != users[0] {
		t.Errorf("identified %s first, want %s (at window %d)", u, users[0], idx)
	}
}

func TestStreamingIdentifierFacade(t *testing.T) {
	ds, err := webtxprofile.GenerateDataset(integrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	set, test, err := webtxprofile.Train(ds, trainConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Use a non-confusable user (the first two share an archetype by
	// construction) so the consecutive-k rule resolves unambiguously.
	u := set.Users()[len(set.Users())-1]
	id, err := webtxprofile.NewIdentifier(set, "10.8.8.8", 3)
	if err != nil {
		t.Fatal(err)
	}
	identified := false
	for _, tx := range test.UserTransactions(u) {
		tx.SourceIP = "10.8.8.8"
		evs, err := id.Feed(tx)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if ev.Identified == u {
				identified = true
			}
		}
	}
	for _, ev := range id.Flush() {
		if ev.Identified == u {
			identified = true
		}
	}
	if !identified {
		t.Errorf("streaming identifier never identified %s", u)
	}
}
