// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive benchmark runs as
// artifacts and the performance trajectory of the engine can be tracked
// across PRs instead of living in log scrollback.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson > BENCH.json
//	go test -run xxx -bench . -benchmem ./... | benchjson -baseline BENCH_PREV.json > BENCH.json
//	go test -run xxx -bench . -benchmem ./... | benchjson -baseline 'BENCH_*.json' > BENCH.json
//
// Every benchmark line becomes one record carrying the iteration count and
// all reported metrics — the standard ns/op, B/op and allocs/op as well as
// custom b.ReportMetric units (e.g. kernelEvals/op). Context lines (goos,
// goarch, cpu, pkg) annotate the records that follow them.
//
// With -baseline, benchjson additionally prints a trajectory table to
// stderr comparing this run's ns/op against the prior report, flagging
// regressions beyond 10%. -baseline accepts comma-separated paths and
// globs; when several reports match (the checked-in BENCH_PR<n>.json
// series), they are ordered by PR number and the table shows the full
// ns/op history of every benchmark — seed to current run, one column per
// report — with the delta taken against the newest baseline. The table is
// warn-only either way — CI publishes it in the job log but the exit
// status is unaffected, since one-shot CI runners are far too noisy for a
// hard perf gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Pkg     string             `json:"pkg,omitempty"`
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits.
type Report struct {
	Schema     string   `json:"schema"`
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Commit     string   `json:"commit,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

// parse consumes `go test -bench` output and collects benchmark records.
func parse(r io.Reader) (Report, error) {
	rep := Report{Schema: "webtxprofile-bench/1", Benchmarks: []Record{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Shape: Name N value unit [value unit ...]; anything shorter is a
		// benchmark that failed before reporting and is skipped.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rec := Record{Pkg: pkg, Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			rec.Metrics[fields[i+1]] = v
		}
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, rec)
		}
	}
	return rep, sc.Err()
}

// regressionThreshold is the ns/op growth beyond which the trajectory
// table flags a benchmark (warn-only).
const regressionThreshold = 0.10

// trajectory renders the warn-only comparison table between a prior
// report and the current one, matching benchmarks by name. Benchmarks
// only present on one side are summarized, not compared.
func trajectory(prev, cur Report, baselineName string) string {
	prevNs := make(map[string]float64, len(prev.Benchmarks))
	for _, rec := range prev.Benchmarks {
		if ns, ok := rec.Metrics["ns/op"]; ok && ns > 0 {
			prevNs[rec.Name] = ns
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark trajectory vs %s (warn-only; >%d%% ns/op growth flagged)\n",
		baselineName, int(regressionThreshold*100))
	fmt.Fprintf(&b, "%-72s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	compared, onlyNew, regressions := 0, 0, 0
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, rec := range cur.Benchmarks {
		seen[rec.Name] = true
		ns, ok := rec.Metrics["ns/op"]
		if !ok || ns <= 0 {
			continue
		}
		old, ok := prevNs[rec.Name]
		if !ok {
			onlyNew++
			continue
		}
		compared++
		delta := (ns - old) / old
		mark := ""
		if delta > regressionThreshold {
			mark = "  !! regression"
			regressions++
		}
		fmt.Fprintf(&b, "%-72s %14.1f %14.1f %+7.1f%%%s\n", rec.Name, old, ns, delta*100, mark)
	}
	var gone []string
	for name := range prevNs {
		if !seen[name] {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	fmt.Fprintf(&b, "compared %d benchmarks; %d new (no baseline), %d regressions flagged\n",
		compared, onlyNew, regressions)
	if len(gone) > 0 {
		fmt.Fprintf(&b, "in baseline but not this run: %s\n", strings.Join(gone, ", "))
	}
	return b.String()
}

// prNumRe extracts the PR number from a checked-in report's file name
// (BENCH_PR7.json → 7), the series' chronological order.
var prNumRe = regexp.MustCompile(`(?i)pr(\d+)`)

func prNumber(path string) int {
	m := prNumRe.FindStringSubmatch(filepath.Base(path))
	if m == nil {
		return -1
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		return -1
	}
	return n
}

// expandBaselines resolves the -baseline argument — comma-separated paths
// and/or globs — into the matched files ordered oldest first: by embedded
// PR number where the name carries one (reports without a number sort
// before the series), then lexically.
func expandBaselines(arg string) ([]string, error) {
	var files []string
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.ContainsAny(part, "*?[") {
			matches, err := filepath.Glob(part)
			if err != nil {
				return nil, fmt.Errorf("bad pattern %q: %w", part, err)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("no files match %q", part)
			}
			files = append(files, matches...)
		} else {
			files = append(files, part)
		}
	}
	sort.SliceStable(files, func(i, j int) bool {
		ni, nj := prNumber(files[i]), prNumber(files[j])
		if ni != nj {
			return ni < nj
		}
		return files[i] < files[j]
	})
	return files, nil
}

// trajectoryAll renders the full warn-only ns/op history across every
// baseline report (oldest → newest) plus the current run: one column per
// report, one row per benchmark of the current run. The delta column and
// the regression flag compare against the newest baseline, exactly like
// the two-report table.
func trajectoryAll(prevs []Report, names []string, cur Report) string {
	cols := make([]map[string]float64, len(prevs))
	for i, p := range prevs {
		cols[i] = make(map[string]float64, len(p.Benchmarks))
		for _, rec := range p.Benchmarks {
			if ns, ok := rec.Metrics["ns/op"]; ok && ns > 0 {
				cols[i][rec.Name] = ns
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark ns/op trajectory across %d reports (warn-only; >%d%% vs %s flagged)\n",
		len(prevs)+1, int(regressionThreshold*100), names[len(names)-1])
	fmt.Fprintf(&b, "%-72s", "benchmark")
	for _, name := range names {
		base := strings.TrimSuffix(filepath.Base(name), ".json")
		fmt.Fprintf(&b, " %14s", base)
	}
	fmt.Fprintf(&b, " %14s %8s\n", "this run", "delta")
	compared, onlyNew, regressions := 0, 0, 0
	last := cols[len(cols)-1]
	for _, rec := range cur.Benchmarks {
		ns, ok := rec.Metrics["ns/op"]
		if !ok || ns <= 0 {
			continue
		}
		fmt.Fprintf(&b, "%-72s", rec.Name)
		for i := range cols {
			if old, ok := cols[i][rec.Name]; ok {
				fmt.Fprintf(&b, " %14.1f", old)
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		old, ok := last[rec.Name]
		if !ok {
			onlyNew++
			fmt.Fprintf(&b, " %14.1f %8s\n", ns, "new")
			continue
		}
		compared++
		delta := (ns - old) / old
		mark := ""
		if delta > regressionThreshold {
			mark = "  !! regression"
			regressions++
		}
		fmt.Fprintf(&b, " %14.1f %+7.1f%%%s\n", ns, delta*100, mark)
	}
	fmt.Fprintf(&b, "compared %d benchmarks; %d new (no baseline), %d regressions flagged\n",
		compared, onlyNew, regressions)
	return b.String()
}

func main() {
	baseline := flag.String("baseline", "",
		"prior benchmark JSON report(s) to diff against: comma-separated paths and globs, e.g. 'BENCH_*.json' (trajectory table on stderr, warn-only)")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	// CI context when available; absent locally.
	rep.Commit = os.Getenv("GITHUB_SHA")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *baseline != "" {
		files, err := expandBaselines(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -baseline: %v\n", err)
			os.Exit(1)
		}
		prevs := make([]Report, len(files))
		for i, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: -baseline: %v\n", err)
				os.Exit(1)
			}
			if err := json.Unmarshal(data, &prevs[i]); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: -baseline %s: %v\n", f, err)
				os.Exit(1)
			}
		}
		if len(prevs) == 1 {
			fmt.Fprint(os.Stderr, trajectory(prevs[0], rep, files[0]))
		} else {
			fmt.Fprint(os.Stderr, trajectoryAll(prevs, files, rep))
		}
	}
}
