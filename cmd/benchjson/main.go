// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive benchmark runs as
// artifacts and the performance trajectory of the engine can be tracked
// across PRs instead of living in log scrollback.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson > BENCH.json
//
// Every benchmark line becomes one record carrying the iteration count and
// all reported metrics — the standard ns/op, B/op and allocs/op as well as
// custom b.ReportMetric units (e.g. kernelEvals/op). Context lines (goos,
// goarch, cpu, pkg) annotate the records that follow them.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Pkg     string             `json:"pkg,omitempty"`
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits.
type Report struct {
	Schema     string   `json:"schema"`
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Commit     string   `json:"commit,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

// parse consumes `go test -bench` output and collects benchmark records.
func parse(r io.Reader) (Report, error) {
	rep := Report{Schema: "webtxprofile-bench/1", Benchmarks: []Record{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Shape: Name N value unit [value unit ...]; anything shorter is a
		// benchmark that failed before reporting and is skipped.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rec := Record{Pkg: pkg, Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			rec.Metrics[fields[i+1]] = v
		}
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, rec)
		}
	}
	return rep, sc.Err()
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	// CI context when available; absent locally.
	rep.Commit = os.Getenv("GITHUB_SHA")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
