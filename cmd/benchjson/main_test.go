package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: webtxprofile
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDecisionKernels/rbf/indexed/svs=50-8   	  326389	       712.7 ns/op
BenchmarkDecisionBatch-8                        	   50000	      2412 ns/op	     128 B/op	       2 allocs/op
BenchmarkParamSearchFullGrid-8                  	       2	 512345678 ns/op	  142578 kernelEvals/op	       8 gramBuilds/op
garbage line
BenchmarkBroken-8	notanumber	1 ns/op
PASS
ok  	webtxprofile	3.728s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("context = %q/%q/%q", rep.GoOS, rep.GoArch, rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkDecisionKernels/rbf/indexed/svs=50-8" || b0.Pkg != "webtxprofile" {
		t.Errorf("record 0 = %+v", b0)
	}
	if b0.Runs != 326389 || b0.Metrics["ns/op"] != 712.7 {
		t.Errorf("record 0 metrics = %+v", b0)
	}
	b1 := rep.Benchmarks[1]
	if b1.Metrics["B/op"] != 128 || b1.Metrics["allocs/op"] != 2 {
		t.Errorf("benchmem metrics = %+v", b1.Metrics)
	}
	b2 := rep.Benchmarks[2]
	if b2.Metrics["kernelEvals/op"] != 142578 || b2.Metrics["gramBuilds/op"] != 8 {
		t.Errorf("custom metrics = %+v", b2.Metrics)
	}
}

func TestParseEmpty(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("benchmarks = %+v, want none", rep.Benchmarks)
	}
}
