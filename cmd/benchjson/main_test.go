package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: webtxprofile
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDecisionKernels/rbf/indexed/svs=50-8   	  326389	       712.7 ns/op
BenchmarkDecisionBatch-8                        	   50000	      2412 ns/op	     128 B/op	       2 allocs/op
BenchmarkParamSearchFullGrid-8                  	       2	 512345678 ns/op	  142578 kernelEvals/op	       8 gramBuilds/op
garbage line
BenchmarkBroken-8	notanumber	1 ns/op
PASS
ok  	webtxprofile	3.728s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("context = %q/%q/%q", rep.GoOS, rep.GoArch, rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkDecisionKernels/rbf/indexed/svs=50-8" || b0.Pkg != "webtxprofile" {
		t.Errorf("record 0 = %+v", b0)
	}
	if b0.Runs != 326389 || b0.Metrics["ns/op"] != 712.7 {
		t.Errorf("record 0 metrics = %+v", b0)
	}
	b1 := rep.Benchmarks[1]
	if b1.Metrics["B/op"] != 128 || b1.Metrics["allocs/op"] != 2 {
		t.Errorf("benchmem metrics = %+v", b1.Metrics)
	}
	b2 := rep.Benchmarks[2]
	if b2.Metrics["kernelEvals/op"] != 142578 || b2.Metrics["gramBuilds/op"] != 8 {
		t.Errorf("custom metrics = %+v", b2.Metrics)
	}
}

func rec(name string, ns float64) Record {
	return Record{Name: name, Runs: 10, Metrics: map[string]float64{"ns/op": ns}}
}

func TestTrajectory(t *testing.T) {
	prev := Report{Benchmarks: []Record{
		rec("BenchmarkStable-8", 100),
		rec("BenchmarkRegressed-8", 100),
		rec("BenchmarkImproved-8", 300),
		rec("BenchmarkRemoved-8", 50),
		{Name: "BenchmarkNoNs-8", Runs: 1, Metrics: map[string]float64{"allocs/op": 3}},
	}}
	cur := Report{Benchmarks: []Record{
		rec("BenchmarkStable-8", 104),
		rec("BenchmarkRegressed-8", 150),
		rec("BenchmarkImproved-8", 100),
		rec("BenchmarkNew-8", 42),
	}}
	out := trajectory(prev, cur, "BENCH_PR6.json")

	for _, want := range []string{
		"BenchmarkStable-8",
		"BenchmarkRegressed-8",
		"BenchmarkImproved-8",
		"compared 3 benchmarks; 1 new (no baseline), 1 regressions flagged",
		"in baseline but not this run: BenchmarkRemoved-8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trajectory output missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.Contains(line, "BenchmarkRegressed-8") && !strings.Contains(line, "!! regression"):
			t.Errorf("regressed benchmark not flagged: %q", line)
		case strings.Contains(line, "BenchmarkStable-8") && strings.Contains(line, "!! regression"):
			t.Errorf("within-threshold benchmark flagged: %q", line)
		case strings.Contains(line, "BenchmarkImproved-8") && strings.Contains(line, "!! regression"):
			t.Errorf("improvement flagged as regression: %q", line)
		case strings.Contains(line, "BenchmarkNew-8"):
			t.Errorf("baseline-less benchmark appears in the table: %q", line)
		}
	}
}

func TestExpandBaselines(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR10.json", "BENCH_PR7.json", "BENCH_PR9.json", "BENCH_seed.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := expandBaselines(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range files {
		names = append(names, filepath.Base(f))
	}
	// Chronological: the numberless seed report first, then by PR number —
	// numerically, so PR10 lands after PR9, not between PR1 and PR2.
	want := []string{"BENCH_seed.json", "BENCH_PR7.json", "BENCH_PR9.json", "BENCH_PR10.json"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("order = %v, want %v", names, want)
	}
	if _, err := expandBaselines(filepath.Join(dir, "NOPE_*.json")); err == nil {
		t.Error("expandBaselines accepted a pattern matching nothing")
	}
}

func TestTrajectoryAll(t *testing.T) {
	pr6 := Report{Benchmarks: []Record{rec("BenchmarkStable-8", 100), rec("BenchmarkRetired-8", 7)}}
	pr7 := Report{Benchmarks: []Record{rec("BenchmarkStable-8", 90), rec("BenchmarkRegressed-8", 100)}}
	cur := Report{Benchmarks: []Record{
		rec("BenchmarkStable-8", 91),
		rec("BenchmarkRegressed-8", 180),
		rec("BenchmarkNew-8", 5),
	}}
	out := trajectoryAll([]Report{pr6, pr7}, []string{"BENCH_PR6.json", "BENCH_PR7.json"}, cur)

	for _, want := range []string{
		"BENCH_PR6", "BENCH_PR7", "this run",
		"compared 2 benchmarks; 1 new (no baseline), 1 regressions flagged",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trajectoryAll output missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.Contains(line, "BenchmarkStable-8"):
			// Full history: both baseline columns populated.
			if !strings.Contains(line, "100.0") || !strings.Contains(line, "90.0") || !strings.Contains(line, "91.0") {
				t.Errorf("stable row missing history columns: %q", line)
			}
			if strings.Contains(line, "!! regression") {
				t.Errorf("stable row flagged (delta is vs newest baseline): %q", line)
			}
		case strings.Contains(line, "BenchmarkRegressed-8"):
			// Absent from the oldest report: a placeholder, then the jump.
			if !strings.Contains(line, "-") || !strings.Contains(line, "!! regression") {
				t.Errorf("regressed row malformed: %q", line)
			}
		case strings.Contains(line, "BenchmarkNew-8") && !strings.Contains(line, "new"):
			t.Errorf("baseline-less benchmark not marked new: %q", line)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("benchmarks = %+v, want none", rep.Benchmarks)
	}
}
