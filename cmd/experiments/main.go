// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables I–V, Figures 1–5) plus the DESIGN.md ablations on the
// synthetic benchmark, writing one text file per experiment.
//
// Usage:
//
//	experiments -scale small -seed 1 -out results
//	experiments -run tab5,fig3
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"webtxprofile/internal/experiments"
)

// runner binds an experiment id to its implementation.
type runner struct {
	id  string
	fn  func(*experiments.Env) (*experiments.Table, error)
	doc string
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleName = flag.String("scale", "small", "experiment scale: small or paper")
		seed      = flag.Int64("seed", 1, "generation seed")
		outDir    = flag.String("out", "results", "output directory")
		runList   = flag.String("run", "all", "comma-separated experiment ids (tab1..tab5, fig1..fig5, abl_*, ext_*) or 'all'")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale(*seed)
	case "paper":
		scale = experiments.PaperScale(*seed)
	default:
		return fmt.Errorf("unknown scale %q (want small or paper)", *scaleName)
	}

	runners := []runner{
		{"tab1", experiments.Table1, "feature vector composition (Table I)"},
		{"fig1", experiments.Figure1, "per-field novelty ratio (Figure 1)"},
		{"fig2", experiments.Figure2, "window novelty ratio (Figure 2)"},
		{"tab2", experiments.Table2, "window duration/shift grid (Table II)"},
		{"tab3", func(e *experiments.Env) (*experiments.Table, error) {
			return experiments.Table3(e, "")
		}, "per-user kernel/C grid for the first user (Table III)"},
		{"tab4", experiments.Table4, "averaged acceptance across window combos (Table IV)"},
		{"tab5", experiments.Table5, "OC-SVM confusion matrix (Table V)"},
		{"fig3", experiments.Figure3, "identification timeline on one device (Figure 3)"},
		{"fig4", experiments.Figure4, "prediction latency distribution (Figure 4)"},
		{"fig5", experiments.Figure5, "composition time scaling (Figure 5)"},
		{"abl_flow", experiments.AblationFlow, "transaction vs flow vs Markov features"},
		{"abl_features", experiments.AblationFeatures, "feature-group knockout"},
		{"ext_algorithms", experiments.ExtensionAlgorithms, "oc-svm vs svdd vs autoencoder (future work)"},
		{"ext_epoch", experiments.ExtensionTrainingEpoch, "training-epoch length sweep (future work)"},
		{"ext_roc", experiments.ExtensionROC, "per-user ROC AUC head-room"},
		{"ext_latency", experiments.ExtensionIdentificationLatency, "time-to-identification (abstract claim)"},
		{"ext_drift", experiments.ExtensionDrift, "behavioural drift + profile refresh"},
	}

	wanted := map[string]bool{}
	if *runList != "all" {
		for _, id := range strings.Split(*runList, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
		for id := range wanted {
			if !knownID(runners, id) {
				return fmt.Errorf("unknown experiment id %q", id)
			}
		}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	fmt.Printf("preparing %s-scale environment (seed %d)...\n", scale.Name, *seed)
	prepStart := time.Now()
	env, err := experiments.NewEnv(scale)
	if err != nil {
		return err
	}
	stats := env.Full.ComputeStats()
	fmt.Printf("dataset: %d transactions, %d users (%d profiled), %d devices [%s]\n",
		stats.Transactions, stats.Users, len(env.Users), stats.Hosts,
		time.Since(prepStart).Round(time.Millisecond))

	for _, r := range runners {
		if *runList != "all" && !wanted[r.id] {
			continue
		}
		start := time.Now()
		tab, err := r.fn(env)
		if err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		path := filepath.Join(*outDir, r.id+".txt")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tab.Format(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%-14s %-55s -> %s [%s]\n", r.id, r.doc, path, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func knownID(runners []runner, id string) bool {
	for _, r := range runners {
		if r.id == id {
			return true
		}
	}
	return false
}
