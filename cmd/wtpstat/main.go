// Command wtpstat summarizes a transaction log the way the paper's
// Sect. IV characterizes its benchmark: volumes, user/device sharing,
// per-user label coverage and (optionally) the weekly novelty curve.
//
// Usage:
//
//	wtpstat -in traffic.log -novelty
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"webtxprofile"
	"webtxprofile/internal/eval"
	"webtxprofile/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wtpstat:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "traffic.log", "input log file")
		novelty = flag.Bool("novelty", false, "also print the weekly novelty curve (Fig. 1 analysis)")
		minTx   = flag.Int("min-transactions", 1500, "representativeness threshold for the coverage report")
	)
	flag.Parse()

	ds, err := webtxprofile.ReadLogFile(*in)
	if err != nil {
		return err
	}
	s := ds.ComputeStats()
	start, end, _ := ds.TimeSpan()
	fmt.Printf("dataset %s\n", *in)
	fmt.Printf("  transactions:    %d\n", s.Transactions)
	fmt.Printf("  span:            %s .. %s (%.1f weeks)\n",
		start.Format("2006-01-02"), end.Format("2006-01-02"),
		end.Sub(start).Hours()/(24*7))
	fmt.Printf("  users:           %d (per-user min/median/max %d/%d/%d)\n",
		s.Users, s.MinPerUser, s.MedianPerUser, s.MaxPerUser)
	fmt.Printf("  devices:         %d (%.2f users/device, %d-%d devices/user)\n",
		s.Hosts, s.UsersPerHost, s.HostsPerUserMin, s.HostsPerUserMax)

	kept, dropped := ds.FilterMinTransactions(*minTx)
	fmt.Printf("  kept users:      %d at the %d-transaction threshold (dropped %d)\n",
		len(kept.Users()), *minTx, len(dropped))

	// Per-user coverage, the paper's Sect. IV-B statistic.
	var cats, subs, apps []float64
	for _, u := range kept.Users() {
		txs := kept.UserTransactions(u)
		cats = append(cats, float64(eval.CoverageCount(txs, eval.SelectCategory)))
		subs = append(subs, float64(eval.CoverageCount(txs, eval.SelectMediaSubType)))
		apps = append(apps, float64(eval.CoverageCount(txs, eval.SelectAppType)))
	}
	if len(cats) > 0 {
		fmt.Printf("  mean coverage:   %.2f categories, %.2f media sub-types, %.2f application types per kept user\n",
			stats.Mean(cats), stats.Mean(subs), stats.Mean(apps))
	}

	if *novelty && len(kept.Users()) > 0 {
		weeks := int(end.Sub(start).Hours()/(24*7)) - 1
		if weeks < 1 {
			weeks = 1
		}
		epochs := make([]int, 0, weeks)
		for w := 1; w <= weeks; w++ {
			epochs = append(epochs, w)
		}
		fmt.Printf("\nweekly novelty (mean across kept users):\n")
		fmt.Printf("  %-6s %-10s %-10s %-10s\n", "week", "category", "app type", "media type")
		selectors := []eval.FieldSelector{eval.SelectCategory, eval.SelectAppType, eval.SelectMediaSubType}
		var series [][]eval.NoveltyPoint
		for _, sel := range selectors {
			pts, err := eval.FieldNovelty(kept, kept.Users(), epochs, start.Truncate(24*time.Hour), sel)
			if err != nil {
				return err
			}
			series = append(series, pts)
		}
		for wi, w := range epochs {
			fmt.Printf("  %-6d %-10.3f %-10.3f %-10.3f\n",
				w, series[0][wi].Mean, series[1][wi].Mean, series[2][wi].Mean)
		}
	}
	return nil
}
