// Command evaluate runs the user-differentiation experiment (Sect. V-A of
// the paper): every trained model against every user's transactions from a
// log file, printing the acceptance confusion matrix and the averaged
// ratios.
//
// Usage:
//
//	evaluate -bundle profiles.gz -in test.log
package main

import (
	"flag"
	"fmt"
	"os"

	"webtxprofile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bundle = flag.String("bundle", "profiles.gz", "trained profile bundle")
		in     = flag.String("in", "traffic.log", "log file with evaluation transactions")
	)
	flag.Parse()

	set, err := webtxprofile.LoadProfilesFile(*bundle)
	if err != nil {
		return err
	}
	ds, err := webtxprofile.ReadLogFile(*in)
	if err != nil {
		return err
	}
	cm, err := set.Evaluate(ds)
	if err != nil {
		return err
	}
	if err := cm.Format(os.Stdout); err != nil {
		return err
	}
	mean := cm.Mean()
	fmt.Printf("\nACCself %.1f%%  ACCother %.1f%%  ACC %.1f%%  (paper: ~90%% / 7.3%% for OC-SVM)\n",
		100*mean.Self, 100*mean.Other, 100*mean.ACC())
	return nil
}
