// Command datagen generates a synthetic web-transaction benchmark dataset
// (the substitute for the paper's vendor corpus) and writes it as a log
// file in the library's self-describing line format.
//
// Usage:
//
//	datagen -out traffic.log -seed 1 -users 36 -weeks 26
package main

import (
	"flag"
	"fmt"
	"os"

	"webtxprofile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out    = flag.String("out", "traffic.log", "output log file")
		seed   = flag.Int64("seed", 1, "generation seed")
		users  = flag.Int("users", 0, "total users (0 = paper default, 36)")
		small  = flag.Int("small-users", -1, "users below the 1500-transaction threshold (-1 = paper default, 11)")
		weeks  = flag.Int("weeks", 0, "monitoring weeks (0 = paper default, 26)")
		median = flag.Float64("weekly-median", 0, "median weekly transactions per user (0 = default)")
	)
	flag.Parse()

	cfg := webtxprofile.DefaultSynthConfig()
	cfg.Seed = *seed
	if *users > 0 {
		cfg.Users = *users
	}
	if *small >= 0 {
		cfg.SmallUsers = *small
	}
	if *weeks > 0 {
		cfg.Weeks = *weeks
	}
	if *median > 0 {
		cfg.WeeklyTxMedian = *median
	}

	ds, err := webtxprofile.GenerateDataset(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := webtxprofile.WriteLog(f, ds); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	stats := ds.ComputeStats()
	fmt.Printf("wrote %s: %d transactions, %d users, %d devices (%.1f users/device), per-user min/median/max %d/%d/%d\n",
		*out, stats.Transactions, stats.Users, stats.Hosts, stats.UsersPerHost,
		stats.MinPerUser, stats.MedianPerUser, stats.MaxPerUser)
	return nil
}
