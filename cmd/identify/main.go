// Command identify runs the user-identification experiment (Sect. V-B of
// the paper) on one device: host-specific windows from the log are
// classified against every profile and rendered as a timeline.
//
// Usage:
//
//	identify -bundle profiles.gz -in device.log -host 10.0.0.7 -k 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"webtxprofile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "identify:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bundle = flag.String("bundle", "profiles.gz", "trained profile bundle")
		in     = flag.String("in", "traffic.log", "log file with the device's transactions")
		host   = flag.String("host", "", "device source address (default: busiest in the log)")
		k      = flag.Int("k", 5, "consecutive accepted windows required for identification")
	)
	flag.Parse()

	set, err := webtxprofile.LoadProfilesFile(*bundle)
	if err != nil {
		return err
	}
	ds, err := webtxprofile.ReadLogFile(*in)
	if err != nil {
		return err
	}
	target := *host
	if target == "" {
		busiest, ok := ds.BusiestHost()
		if !ok {
			return fmt.Errorf("no hosts in %s", *in)
		}
		target = busiest
		fmt.Printf("no -host given; using busiest device %s\n", target)
	}
	tl, err := set.IdentifyHost(ds, target)
	if err != nil {
		return err
	}
	fmt.Printf("device %s: %d windows (%s each)\n\n", target, len(tl), set.Window)
	for _, pt := range tl {
		marks := strings.Join(pt.Accepted, ",")
		if marks == "" {
			marks = "-"
		}
		fmt.Printf("%s  actual=%-10s accepted=%s\n",
			pt.Start.Format("15:04:05"), pt.ActualUser, marks)
	}
	if u, idx, ok := webtxprofile.IdentifyConsecutive(tl, *k); ok {
		fmt.Printf("\nidentified %s after %d windows (%d consecutive acceptances)\n", u, idx+1, *k)
	} else {
		fmt.Printf("\nno user reached %d consecutive accepted windows\n", *k)
	}
	return nil
}
