package main

import "testing"

func TestParseMembers(t *testing.T) {
	got, err := parseMembers(" nodeA=host1:7100, nodeB=host2:7100 ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "nodeA" || got[0].Addr != "host1:7100" ||
		got[1].Name != "nodeB" || got[1].Addr != "host2:7100" {
		t.Errorf("parsed %+v", got)
	}
	for _, bad := range []string{"", ",", "nodeA", "nodeA=", "=host:1", "a=x,a=y"} {
		if _, err := parseMembers(bad); err == nil {
			t.Errorf("-join %q accepted", bad)
		}
	}
}
