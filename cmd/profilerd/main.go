// Command profilerd is the continuous-authentication daemon from the
// paper's deployment scenario (Sect. I): it receives live transaction logs
// over TCP (the proxy streams its log lines), maintains one streaming
// identifier per device, and reports identification changes — the basis
// for automatic logout (continuous authentication) or administrator alerts
// (intrusion monitoring).
//
// The live path is the sharded streaming engine: parsed transactions are
// batched per connection and fed through Monitor.FeedBatch, devices are
// lock-striped across -shards shards (each with its own scoring scratch),
// alerts are delivered from a dedicated goroutine rather than under a
// lock, and devices idle longer than -idle-ttl (in stream time) are
// evicted so tracked-device memory stays bounded.
//
// With -state-dir the identification state becomes durable: evicted
// devices spill their window buffer, streaks and confirmed identity into
// the directory instead of losing them (rehydrating on their next
// transaction), SIGTERM checkpoints every live device there, and a
// restart over the same directory resumes each device exactly where it
// left off. See README.md for the state lifecycle. SIGINT keeps the
// classic lossy shutdown (flush pending windows, emit final alerts).
//
// Usage:
//
//	profilerd -bundle profiles.gz -listen 127.0.0.1:7000 -k 5 \
//	          -shards 16 -idle-ttl 1h -batch 256 -state-dir /var/lib/profilerd
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"webtxprofile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "profilerd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bundle   = flag.String("bundle", "profiles.gz", "trained profile bundle")
		listen   = flag.String("listen", "127.0.0.1:7000", "TCP listen address")
		k        = flag.Int("k", 5, "consecutive accepted windows for identification")
		shards   = flag.Int("shards", 16, "device lock stripes in the monitor")
		idleTTL  = flag.Duration("idle-ttl", time.Hour, "evict devices idle this long in stream time (0 disables)")
		batch    = flag.Int("batch", 256, "max transactions per ingestion batch")
		stateDir = flag.String("state-dir", "", "durable identifier state: spill evicted devices here, checkpoint on SIGTERM, restore on start (empty disables)")
	)
	flag.Parse()

	set, err := webtxprofile.LoadProfilesFile(*bundle)
	if err != nil {
		return err
	}
	logger := log.New(os.Stdout, "profilerd: ", log.LstdFlags)

	var store *webtxprofile.DiskStateStore
	if *stateDir != "" {
		if store, err = webtxprofile.NewDiskStateStore(*stateDir); err != nil {
			return err
		}
		spilled, err := store.Devices()
		if err != nil {
			return err
		}
		if len(spilled) > 0 {
			// Restore-on-start is lazy: each device rehydrates — window
			// buffer, streaks and confirmed identity intact — when its
			// first transaction arrives.
			logger.Printf("state-dir %s holds %d checkpointed devices; they resume on their next transaction",
				*stateDir, len(spilled))
		}
	}

	mon, err := webtxprofile.NewMonitorWithConfig(set, *k, func(a webtxprofile.Alert) {
		switch {
		case a.Kind == webtxprofile.AlertIdentified:
			logger.Printf("device %s: identified %s (window %s, %d models accepted)",
				a.Device, a.User, a.Event.Window.Start.Format("15:04:05"), len(a.Event.Accepted))
		case a.Kind == webtxprofile.AlertLost && a.Event.Window.Start.IsZero():
			// Idle eviction: the session ended silently, with no closing
			// window.
			logger.Printf("device %s: ALERT — %s's session ended (device idle, evicted)",
				a.Device, a.User)
		case a.Kind == webtxprofile.AlertLost:
			logger.Printf("device %s: ALERT — activity no longer matches %s (window %s)",
				a.Device, a.User, a.Event.Window.Start.Format("15:04:05"))
		}
	}, webtxprofile.MonitorConfig{Shards: *shards, IdleTTL: *idleTTL, Spill: spillStore(store)})
	if err != nil {
		return err
	}

	srv, err := webtxprofile.ListenCollectorBatch(*listen, func(txs []webtxprofile.Transaction) {
		if err := mon.FeedBatch(txs); err != nil {
			logger.Printf("feed: %v", err)
		}
	}, webtxprofile.CollectorBatchConfig{MaxBatch: *batch})
	if err != nil {
		return err
	}
	defer srv.Close()
	logger.Printf("listening on %s with %d profiles (k=%d, %d shards, idle-ttl %v)",
		srv.Addr(), len(set.Profiles), *k, *shards, *idleTTL)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	srv.Close() // stop ingestion before the final flush or checkpoint
	devices := mon.Devices()
	if store != nil && s == syscall.SIGTERM {
		// Durable shutdown: persist every live device instead of flushing,
		// so a restart over the same -state-dir resumes each one exactly —
		// no partial windows emitted, no synthetic session-end alerts.
		n, err := mon.Checkpoint()
		mon.Close()
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		logger.Printf("checkpointed %d devices to %s", n, *stateDir)
		return nil
	}
	mon.Flush()
	mon.Close()
	logger.Printf("shutting down after monitoring %d devices", devices)
	return nil
}

// spillStore converts the optional disk store into the monitor's
// StateStore field without wrapping a typed nil in a non-nil interface.
func spillStore(s *webtxprofile.DiskStateStore) webtxprofile.StateStore {
	if s == nil {
		return nil
	}
	return s
}
