// Command profilerd is the continuous-authentication daemon from the
// paper's deployment scenario (Sect. I): it receives live transaction logs
// over TCP (the proxy streams its log lines), maintains one streaming
// identifier per device, and reports identification changes — the basis
// for automatic logout (continuous authentication) or administrator alerts
// (intrusion monitoring).
//
// Usage:
//
//	profilerd -bundle profiles.gz -listen 127.0.0.1:7000 -k 5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"webtxprofile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "profilerd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bundle = flag.String("bundle", "profiles.gz", "trained profile bundle")
		listen = flag.String("listen", "127.0.0.1:7000", "TCP listen address")
		k      = flag.Int("k", 5, "consecutive accepted windows for identification")
	)
	flag.Parse()

	set, err := webtxprofile.LoadProfilesFile(*bundle)
	if err != nil {
		return err
	}
	logger := log.New(os.Stdout, "profilerd: ", log.LstdFlags)

	mon, err := webtxprofile.NewMonitor(set, *k, func(a webtxprofile.Alert) {
		at := a.Event.Window.Start.Format("15:04:05")
		switch a.Kind {
		case webtxprofile.AlertIdentified:
			logger.Printf("device %s: identified %s (window %s, %d models accepted)",
				a.Device, a.User, at, len(a.Event.Accepted))
		case webtxprofile.AlertLost:
			logger.Printf("device %s: ALERT — activity no longer matches %s (window %s)",
				a.Device, a.User, at)
		}
	})
	if err != nil {
		return err
	}

	srv, err := webtxprofile.ListenCollector(*listen, func(tx webtxprofile.Transaction) {
		if err := mon.Feed(tx); err != nil {
			logger.Printf("device %s: %v", tx.SourceIP, err)
		}
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	logger.Printf("listening on %s with %d profiles (k=%d)", srv.Addr(), len(set.Profiles), *k)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	mon.Flush()
	logger.Printf("shutting down after monitoring %d devices", mon.Devices())
	return nil
}
