// Command profilerd is the continuous-authentication daemon from the
// paper's deployment scenario (Sect. I): it receives live transaction logs
// over TCP (the proxy streams its log lines), maintains one streaming
// identifier per device, and reports identification changes — the basis
// for automatic logout (continuous authentication) or administrator alerts
// (intrusion monitoring).
//
// The live path is the sharded streaming engine: parsed transactions are
// batched per connection and fed through Monitor.FeedBatch, devices are
// lock-striped across -shards shards (each with its own scoring scratch),
// alerts are delivered from a dedicated goroutine rather than under a
// lock, and devices idle longer than -idle-ttl (in stream time) are
// evicted so tracked-device memory stays bounded.
//
// With -state-dir the identification state becomes durable: evicted
// devices spill their window buffer, streaks and confirmed identity into
// the directory instead of losing them (rehydrating on their next
// transaction), SIGTERM checkpoints every live device there, and a
// restart over the same directory resumes each device exactly where it
// left off. See README.md for the state lifecycle. SIGINT keeps the
// classic lossy shutdown (flush pending windows, emit final alerts).
//
// With -state-addr the same lifecycle targets the fleet-wide state tier
// instead of a local directory: spills and checkpoints go to a shared
// state server (run one with -state-server, optionally backed by its own
// -state-dir) through a write-behind client, so a device's state
// survives the node that held it. A cluster front end told the tier
// exists (-join with -state-addr; it never dials the tier itself)
// warm-restores moved devices from the store instead of draining live
// peers, and reroutes a dead node's devices without any handoff — they
// rehydrate lazily at their new owner.
//
// Past one process, profilerd clusters (see README.md for the lifecycle):
//
//   - profilerd -cluster :7100 -node-name nodeA runs a member node: no
//     proxy-facing collector, just the cluster wire protocol (feed,
//     shard export/import, alert push) over its own sharded monitor.
//   - profilerd -join nodeA=host1:7100,nodeB=host2:7100 runs the
//     front-end router: the -listen collector ingests proxy log lines,
//     devices are placed on members by rendezvous hashing, membership
//     changes drain only the devices whose placement moved, and every
//     alert is logged with the node it originated on. The front end
//     holds no monitor, so it needs no bundle, and the identification
//     flags (-k, -shards, -idle-ttl, -state-dir) belong on the nodes.
//   - profilerd -state-server :7200 -state-dir /var/lib/profilerd-state
//     runs the shared state tier the nodes point -state-addr at.
//
// Usage:
//
//	profilerd -bundle profiles.gz -listen 127.0.0.1:7000 -k 5 \
//	          -shards 16 -idle-ttl 1h -batch 256 -state-dir /var/lib/profilerd
//	profilerd -state-server 0.0.0.0:7200 -state-dir /var/lib/profilerd-state
//	profilerd -bundle profiles.gz -cluster 0.0.0.0:7100 -node-name nodeA \
//	          -state-addr host0:7200
//	profilerd -listen 127.0.0.1:7000 -join nodeA=host1:7100,nodeB=host2:7100 \
//	          -state-addr host0:7200
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux for -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"webtxprofile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "profilerd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bundle    = flag.String("bundle", "profiles.gz", "trained profile bundle")
		listen    = flag.String("listen", "127.0.0.1:7000", "TCP listen address for proxy log lines")
		k         = flag.Int("k", 5, "consecutive accepted windows for identification")
		shards    = flag.Int("shards", 16, "device lock stripes in the monitor")
		idleTTL   = flag.Duration("idle-ttl", time.Hour, "evict devices idle this long in stream time (0 disables)")
		batch     = flag.Int("batch", 256, "max transactions per ingestion batch")
		ingestQ   = flag.Int("ingest-queue", 0, "bounded ingest queue depth; senders block (TCP backpressure) when full (0 = 4x -batch)")
		maxWire   = flag.Int("max-wire", 0, "highest cluster wire protocol version to negotiate (0 = highest supported, 1 forces JSON frames)")
		stateDir  = flag.String("state-dir", "", "durable identifier state: spill evicted devices here, checkpoint on SIGTERM, restore on start; backing store in -state-server mode (empty disables)")
		stateSrv  = flag.String("state-server", "", "run as the fleet-wide state tier: serve the state protocol on this address (optionally backed by -state-dir)")
		stateAddr = flag.String("state-addr", "", "spill and checkpoint to the state server at this address through a write-behind client instead of a local -state-dir; on the -join front end, enables warm restore and failover without handoff")
		clusterL  = flag.String("cluster", "", "run as a cluster node: serve the node wire protocol on this address instead of a proxy collector")
		nodeName  = flag.String("node-name", "", "this node's cluster name (default: hostname; -cluster mode)")
		join      = flag.String("join", "", "run as the cluster front end routing to these members: comma-separated name=addr pairs")
		gossipL   = flag.String("gossip", "", "serve router gossip on this address so replica front ends can reconcile membership and placement overrides (-join mode)")
		peers     = flag.String("peers", "", "comma-separated gossip addresses of replica front ends to exchange state with periodically (-join mode)")
		pprofA    = flag.String("pprof", "", "serve net/http/pprof on this address for live profiling of the scoring path (empty disables)")
		score32   = flag.Bool("score-float32", false, "score windows through float32 fused postings/accumulators: ~half the scoring memory, decisions within the documented float32 bound of exact float64")
		scoreP    = flag.Bool("score-portable", false, "force the portable per-posting scoring kernels instead of the auto-resolved engine (bit-identical decisions; for debugging and A/B timing)")
	)
	flag.Parse()
	if *clusterL != "" && *join != "" {
		return fmt.Errorf("-cluster and -join are mutually exclusive: a process is a member or the front end")
	}
	if *stateSrv != "" && (*clusterL != "" || *join != "") {
		return fmt.Errorf("-state-server is its own role: it is neither a member (-cluster) nor the front end (-join)")
	}
	if *stateAddr != "" && *stateDir != "" {
		return fmt.Errorf("-state-addr and -state-dir are mutually exclusive: state spills to the shared tier or to a local directory, not both")
	}
	// Refuse explicitly-set flags the selected role would silently
	// ignore — a dead flag on a daemon is a misconfiguration, not a
	// default.
	switch {
	case *stateSrv != "":
		// The state server holds no monitor and no collector: it serves
		// versioned device blobs, nothing else. Only -state-dir (its
		// backing store) travels with it.
		if err := rejectMisplacedFlags("the -state-server tier (only -state-dir configures it)",
			"bundle", "listen", "k", "shards", "idle-ttl", "batch", "ingest-queue", "max-wire",
			"node-name", "gossip", "peers", "pprof", "score-float32", "score-portable", "state-addr"); err != nil {
			return err
		}
	case *join != "":
		// The front end holds no monitor: identification state, eviction
		// and the threshold all live on the member nodes — and so do the
		// scoring hot path (-pprof profiles it live) and its precision
		// mode (-score-float32) and engine (-score-portable). -state-addr
		// is the exception: the front end never dials the tier, but
		// knowing it exists switches rebalancing to warm restore and node
		// failure to rerouting.
		if err := rejectMisplacedFlags("the -join front end (set them on the -cluster processes)",
			"bundle", "k", "shards", "idle-ttl", "state-dir", "node-name", "pprof", "score-float32", "score-portable"); err != nil {
			return err
		}
	case *clusterL != "":
		// A member node serves the cluster protocol only; the proxy-facing
		// collector (and its batching) lives on the front end, as does
		// router replication.
		if err := rejectMisplacedFlags("a -cluster member node (set them on the -join front end)",
			"listen", "batch", "ingest-queue", "gossip", "peers"); err != nil {
			return err
		}
	default:
		if err := rejectMisplacedFlags("a standalone daemon (-node-name names a -cluster member, -max-wire the cluster protocol, -gossip/-peers replicate the front end)",
			"node-name", "max-wire", "gossip", "peers"); err != nil {
			return err
		}
	}
	logger := log.New(os.Stdout, "profilerd: ", log.LstdFlags)

	if *stateSrv != "" {
		return runStateServer(logger, *stateSrv, *stateDir)
	}
	if *join != "" {
		return runRouter(logger, *join, *listen, *batch, *ingestQ, *maxWire, *gossipL, *peers, *stateAddr != "")
	}

	if *pprofA != "" {
		// net/http/pprof registers its handlers on the default mux at
		// import time; serving the default mux on a dedicated listener
		// exposes /debug/pprof/ without touching the collector or cluster
		// listeners.
		ln, err := net.Listen("tcp", *pprofA)
		if err != nil {
			return fmt.Errorf("-pprof listen: %w", err)
		}
		logger.Printf("pprof serving on http://%s/debug/pprof/", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				logger.Printf("pprof server stopped: %v", err)
			}
		}()
	}

	set, err := webtxprofile.LoadProfilesFile(*bundle)
	if err != nil {
		return err
	}

	var tier *stateTier
	switch {
	case *stateAddr != "":
		remote, err := webtxprofile.DialStateStore(*stateAddr, webtxprofile.RemoteStateConfig{})
		if err != nil {
			return fmt.Errorf("-state-addr %s: %w", *stateAddr, err)
		}
		tier = &stateTier{remote: remote, desc: "state server " + *stateAddr}
		logger.Printf("spilling to %s (write-behind); devices resume on their next transaction wherever they land", tier.desc)
	case *stateDir != "":
		disk, err := webtxprofile.NewDiskStateStore(*stateDir)
		if err != nil {
			return err
		}
		tier = &stateTier{disk: disk, desc: "state-dir " + *stateDir}
		spilled, err := disk.Devices()
		if err != nil {
			return err
		}
		if len(spilled) > 0 {
			// Restore-on-start is lazy: each device rehydrates — window
			// buffer, streaks and confirmed identity intact — when its
			// first transaction arrives.
			logger.Printf("state-dir %s holds %d checkpointed devices; they resume on their next transaction",
				*stateDir, len(spilled))
		}
	}
	monCfg := webtxprofile.MonitorConfig{Shards: *shards, IdleTTL: *idleTTL, Spill: tier.store(),
		SharedSpill: tier.shared(), Float32Scoring: *score32}
	if *scoreP {
		monCfg.ScoringKernels = webtxprofile.KernelsPortable
	}

	if *clusterL != "" {
		return runNode(logger, set, *clusterL, *nodeName, *k, *maxWire, monCfg, tier)
	}
	return runStandalone(logger, set, *listen, *k, monCfg, *batch, *ingestQ, tier)
}

// stateTier is whichever spill backend the role resolved — at most one of
// disk/remote is set; a nil *stateTier means no durable state at all. Its
// methods are nil-safe so callers never branch on presence.
type stateTier struct {
	disk   *webtxprofile.DiskStateStore
	remote *webtxprofile.RemoteStateStore
	desc   string // human name for logs: "state-dir /x" or "state server host:port"
}

// store returns the tier as the monitor's Spill field without wrapping a
// typed nil in a non-nil interface.
func (t *stateTier) store() webtxprofile.StateStore {
	switch {
	case t == nil:
		return nil
	case t.remote != nil:
		return t.remote
	case t.disk != nil:
		return t.disk
	}
	return nil
}

// shared reports whether the tier is the fleet-wide store (the monitor
// must not treat its contents as exclusively this process's devices).
func (t *stateTier) shared() bool { return t != nil && t.remote != nil }

// runStandalone is the classic single-process daemon: collector → monitor.
func runStandalone(logger *log.Logger, set *webtxprofile.ProfileSet, listen string, k int,
	monCfg webtxprofile.MonitorConfig, batch, ingestQ int, tier *stateTier) error {
	mon, err := webtxprofile.NewMonitorWithConfig(set, k, func(a webtxprofile.Alert) {
		logAlert(logger, "", a)
	}, monCfg)
	if err != nil {
		return err
	}

	srv, err := webtxprofile.ListenCollectorBatch(listen, func(txs []webtxprofile.Transaction) {
		if err := mon.FeedBatch(txs); err != nil {
			logger.Printf("feed: %v", err)
		}
	}, webtxprofile.CollectorBatchConfig{MaxBatch: batch, QueueDepth: ingestQ})
	if err != nil {
		return err
	}
	defer srv.Close()
	logger.Printf("scoring engine %s; index %s", mon.ScoringEngine(), mon.ScoringFootprint())
	logger.Printf("listening on %s with %d profiles (k=%d, %d shards, idle-ttl %v)",
		srv.Addr(), len(set.Profiles), k, monCfg.Shards, monCfg.IdleTTL)

	s := waitSignal()
	srv.Close() // stop ingestion before the final flush or checkpoint
	return shutdownMonitor(logger, mon, s, tier)
}

// runNode serves the cluster wire protocol over this process's monitor.
func runNode(logger *log.Logger, set *webtxprofile.ProfileSet, addr, name string, k, maxWire int,
	monCfg webtxprofile.MonitorConfig, tier *stateTier) error {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			return fmt.Errorf("-node-name not set and hostname unavailable: %w", err)
		}
		name = host
	}
	node, err := webtxprofile.ListenClusterNode(addr, set, webtxprofile.ClusterNodeConfig{
		Name:     name,
		K:        k,
		MaxWire:  maxWire,
		Monitor:  monCfg,
		OnAlert:  func(a webtxprofile.Alert) { logAlert(logger, name, a) },
		ErrorLog: logger,
	})
	if err != nil {
		return err
	}
	defer node.Close()
	logger.Printf("scoring engine %s; index %s", node.Monitor().ScoringEngine(), node.Monitor().ScoringFootprint())
	logger.Printf("cluster node %s serving on %s with %d profiles (k=%d, %d shards)",
		name, node.Addr(), len(set.Profiles), k, monCfg.Shards)

	s := waitSignal()
	// Stop serving before deciding what happens to the live state, so no
	// router can keep feeding a monitor that is flushing or
	// checkpointing — Stop (not Close) keeps the monitor usable for that
	// decision.
	node.Stop()
	return shutdownMonitor(logger, node.Monitor(), s, tier)
}

// runStateServer is the fleet-wide state tier: versioned device blobs in
// memory, optionally persisted through a disk store, served to every
// node's write-behind client.
func runStateServer(logger *log.Logger, addr, stateDir string) error {
	cfg := webtxprofile.StateServerConfig{ErrorLog: logger}
	if stateDir != "" {
		backing, err := webtxprofile.NewDiskStateStore(stateDir)
		if err != nil {
			return err
		}
		cfg.Backing = backing
	}
	srv, err := webtxprofile.ListenStateServer(addr, cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	if stateDir != "" {
		logger.Printf("state server on %s backed by %s (%d devices loaded)", srv.Addr(), stateDir, srv.Len())
	} else {
		logger.Printf("state server on %s (in-memory: device state survives node restarts, not a server restart)", srv.Addr())
	}

	waitSignal()
	n := srv.Len()
	err = srv.Close()
	logger.Printf("state server shutting down holding %d devices", n)
	return err
}

// runRouter is the front end: proxy log lines in, rendezvous-routed
// transactions out to the member nodes, origin-tagged alerts logged.
// With -gossip/-peers the front end is replicated: replicas reconcile
// membership and placement overrides by periodic anti-entropy exchanges,
// and each one routes independently (placement is deterministic, alerts
// deduplicate downstream on their node sequence numbers). With
// -state-addr (sharedState) rebalancing warm-restores from the tier and
// node failure reroutes without handoff.
func runRouter(logger *log.Logger, join, listen string, batch, ingestQ, maxWire int,
	gossipAddr, peers string, sharedState bool) error {
	members, err := parseMembers(join)
	if err != nil {
		return err
	}
	router := webtxprofile.NewClusterRouter(func(a webtxprofile.NodeAlert) {
		logAlert(logger, a.Node, a.Alert)
	}, webtxprofile.ClusterRouterConfig{MaxWire: maxWire, SharedState: sharedState})
	defer router.Close()
	for _, m := range members {
		if err := router.AddNode(m); err != nil {
			return fmt.Errorf("joining %s at %s: %w", m.Name, m.Addr, err)
		}
		logger.Printf("joined node %s at %s", m.Name, m.Addr)
	}

	if gossipAddr != "" {
		gs, err := webtxprofile.ServeClusterGossip(router, gossipAddr)
		if err != nil {
			return fmt.Errorf("-gossip listen: %w", err)
		}
		defer gs.Close()
		logger.Printf("gossip serving on %s", gs.Addr())
	}
	if peers != "" {
		var list []string
		for _, p := range strings.Split(peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			// One failed peer must not silence the others: exchanges are
			// independent, and a peer that was down converges on its next
			// successful round.
			t := time.NewTicker(5 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					for _, p := range list {
						if err := router.GossipWith(p); err != nil {
							logger.Printf("gossip %s: %v", p, err)
						}
					}
				}
			}
		}()
	}

	srv, err := webtxprofile.ListenCollectorBatch(listen, func(txs []webtxprofile.Transaction) {
		if err := router.FeedBatch(txs); err != nil {
			logger.Printf("route: %v", err)
		}
	}, webtxprofile.CollectorBatchConfig{MaxBatch: batch, QueueDepth: ingestQ})
	if err != nil {
		return err
	}
	defer srv.Close()
	view := router.View()
	logger.Printf("routing %s across %d nodes (membership v%d)", srv.Addr(), len(view.Members), view.Version)

	waitSignal()
	srv.Close() // stop ingestion, then let the nodes finish their streams
	if err := router.Flush(); err != nil {
		logger.Printf("flush: %v", err)
	}
	cs := webtxprofile.ReadClusterStats()
	logger.Printf("cluster stats: %d gossip rounds, %d view adoptions, %d override entries, %d tombstones, %d handoff aborts, %d warm restores, %d failover reroutes",
		cs.GossipRounds, cs.ViewAdoptions, cs.OverrideEntries, cs.OverrideTombstones,
		cs.HandoffAborts, cs.WarmRestores, cs.FailoverReroutes)
	logger.Printf("shutting down after routing %d devices", router.Devices())
	return nil
}

// shutdownMonitor applies the shared shutdown contract: SIGTERM with a
// state tier checkpoints (lossless restart), anything else flushes (lossy
// end-of-stream alerts). A write-behind tier is drained before the
// checkpoint is reported done — a queued spill is not a durable one.
func shutdownMonitor(logger *log.Logger, mon *webtxprofile.Monitor, s os.Signal, tier *stateTier) error {
	devices := mon.Devices()
	if tier.store() != nil && s == syscall.SIGTERM {
		// Durable shutdown: persist every live device instead of flushing,
		// so a restart over the same state tier resumes each one exactly —
		// no partial windows emitted, no synthetic session-end alerts.
		spilled, failed, err := mon.Checkpoint()
		mon.Close()
		if tier.remote != nil {
			if ferr := tier.remote.Flush(); ferr != nil {
				err = errors.Join(err, fmt.Errorf("draining write-behind queue: %w", ferr))
			}
			if cerr := tier.remote.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
		}
		if err != nil {
			if spilled > 0 {
				logger.Printf("checkpointed %d devices to %s before the failure", spilled, tier.desc)
			}
			return fmt.Errorf("checkpoint (%d devices failed): %w", failed, err)
		}
		logger.Printf("checkpointed %d devices to %s", spilled, tier.desc)
		return nil
	}
	mon.Flush()
	mon.Close()
	if tier.shared() {
		// Lossy shutdown over the shared tier: drop the queue (the devices
		// just emitted their final alerts) but close the connection cleanly.
		if err := tier.remote.Close(); err != nil {
			logger.Printf("closing state client: %v", err)
		}
	}
	logger.Printf("shutting down after monitoring %d devices", devices)
	return nil
}

// logAlert renders one identity transition; origin is the cluster node it
// came from ("" for the in-process monitor).
func logAlert(logger *log.Logger, origin string, a webtxprofile.Alert) {
	prefix := ""
	if origin != "" {
		prefix = "[" + origin + "] "
	}
	switch {
	case a.Kind == webtxprofile.AlertIdentified:
		logger.Printf("%sdevice %s: identified %s (window %s, %d models accepted)",
			prefix, a.Device, a.User, a.Event.Window.Start.Format("15:04:05"), len(a.Event.Accepted))
	case a.Kind == webtxprofile.AlertLost && a.Event.Window.Start.IsZero():
		// Idle eviction: the session ended silently, with no closing
		// window.
		logger.Printf("%sdevice %s: ALERT — %s's session ended (device idle, evicted)",
			prefix, a.Device, a.User)
	case a.Kind == webtxprofile.AlertLost:
		logger.Printf("%sdevice %s: ALERT — activity no longer matches %s (window %s)",
			prefix, a.Device, a.User, a.Event.Window.Start.Format("15:04:05"))
	}
}

// rejectMisplacedFlags errors when any of the named flags was set on the
// command line but has no effect in the selected role (flag.Visit only
// sees explicitly-set flags, so defaults never trip it).
func rejectMisplacedFlags(role string, dead ...string) error {
	deadSet := make(map[string]bool, len(dead))
	for _, d := range dead {
		deadSet[d] = true
	}
	var misplaced []string
	flag.Visit(func(f *flag.Flag) {
		if deadSet[f.Name] {
			misplaced = append(misplaced, "-"+f.Name)
		}
	})
	if len(misplaced) > 0 {
		return fmt.Errorf("%s: no effect on %s", strings.Join(misplaced, ", "), role)
	}
	return nil
}

// parseMembers parses the -join list: name=addr,name=addr,...
func parseMembers(s string) ([]webtxprofile.ClusterMember, error) {
	var out []webtxprofile.ClusterMember
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("-join entry %q is not name=addr", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("-join names %s twice", name)
		}
		seen[name] = true
		out = append(out, webtxprofile.ClusterMember{Name: name, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-join lists no members")
	}
	return out, nil
}

func waitSignal() os.Signal {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	return <-sig
}
