// Command train fits one one-class model per user from a transaction log
// and writes the trained profile bundle.
//
// Usage:
//
//	train -in traffic.log -out profiles.gz -algo oc-svm -autotune
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"webtxprofile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("in", "traffic.log", "input log file")
		out      = flag.String("out", "profiles.gz", "output profile bundle")
		algoName = flag.String("algo", "oc-svm", "algorithm: oc-svm or svdd")
		duration = flag.Duration("window", time.Minute, "window duration D")
		shift    = flag.Duration("shift", 30*time.Second, "window shift S")
		param    = flag.Float64("param", 0, "nu (oc-svm) or C (svdd); 0 = default")
		autotune = flag.Bool("autotune", false, "grid-search kernel and nu/C per user")
		maxWin   = flag.Int("max-train-windows", 2000, "cap on per-user training windows")
		minTx    = flag.Int("min-transactions", 1500, "drop users with fewer transactions")
	)
	flag.Parse()

	ds, err := webtxprofile.ReadLogFile(*in)
	if err != nil {
		return err
	}
	algo, err := parseAlgo(*algoName)
	if err != nil {
		return err
	}
	cfg := webtxprofile.Config{
		Window:          webtxprofile.WindowConfig{Duration: *duration, Shift: *shift},
		Algorithm:       algo,
		Param:           *param,
		AutoTune:        *autotune,
		MaxTrainWindows: *maxWin,
		MinTransactions: *minTx,
	}
	started := time.Now()
	set, test, err := webtxprofile.Train(ds, cfg)
	if err != nil {
		return err
	}
	if err := set.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("trained %d profiles in %s (algo %v, window %s)\n",
		len(set.Profiles), time.Since(started).Round(time.Millisecond), algo, set.Window)
	for _, u := range set.Users() {
		p := set.Profiles[u]
		fmt.Printf("  %-10s kernel=%v param=%g windows=%d SVs=%d\n",
			u, p.Model.Kernel, p.Model.Param, p.TrainWindows, p.Model.NumSVs())
	}
	fmt.Printf("wrote %s; held-out test epoch: %d transactions\n", *out, test.Len())
	return nil
}

func parseAlgo(s string) (webtxprofile.Algorithm, error) {
	switch s {
	case "oc-svm":
		return webtxprofile.OCSVM, nil
	case "svdd":
		return webtxprofile.SVDD, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want oc-svm or svdd)", s)
	}
}
