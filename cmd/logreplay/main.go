// Command logreplay streams a recorded transaction log to a collector
// (e.g. profilerd) in accelerated log time — the companion tool for
// demonstrating the live continuous-authentication deployment on recorded
// traffic.
//
// Usage:
//
//	logreplay -in traffic.log -to 127.0.0.1:7000 -speedup 60
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"webtxprofile"
	"webtxprofile/internal/replay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "logreplay:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "traffic.log", "input log file")
		to      = flag.String("to", "127.0.0.1:7000", "collector address")
		speedup = flag.Float64("speedup", 60, "time acceleration (0 = no pacing)")
		maxGap  = flag.Duration("max-gap", 5*time.Second, "cap on a single pause (0 = uncapped)")
		host    = flag.String("host", "", "replay only this device's transactions")
	)
	flag.Parse()

	ds, err := webtxprofile.ReadLogFile(*in)
	if err != nil {
		return err
	}
	txs := ds.Transactions
	if *host != "" {
		txs = ds.HostTransactions(*host)
		if len(txs) == 0 {
			return fmt.Errorf("no transactions for host %s", *host)
		}
	}

	client, err := webtxprofile.DialCollector(*to)
	if err != nil {
		return err
	}
	defer client.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("replaying %d transactions to %s at %gx\n", len(txs), *to, *speedup)
	started := time.Now()
	sent, err := replay.Run(ctx, txs, func(tx webtxprofile.Transaction) error {
		if err := client.Send(tx); err != nil {
			return err
		}
		// Flush per record so the collector sees log time, not buffer
		// time.
		return client.Flush()
	}, replay.Config{Speedup: *speedup, MaxGap: *maxGap})
	fmt.Printf("sent %d/%d transactions in %s\n", sent, len(txs), time.Since(started).Round(time.Millisecond))
	return err
}
