module webtxprofile

go 1.24
