package webtxprofile

import "webtxprofile/internal/collector"

// CollectorServer receives transaction log lines over TCP — the ingestion
// point of the continuous-authentication deployment.
type CollectorServer = collector.Server

// CollectorClient streams transactions to a CollectorServer.
type CollectorClient = collector.Client

// ListenCollector starts a TCP log collector on addr; handler receives
// every parsed transaction (from per-connection goroutines).
func ListenCollector(addr string, handler func(Transaction)) (*CollectorServer, error) {
	return collector.Listen(addr, collector.Handler(handler))
}

// DialCollector connects a log-producing client to a collector.
func DialCollector(addr string) (*CollectorClient, error) {
	return collector.Dial(addr)
}
