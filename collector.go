package webtxprofile

import "webtxprofile/internal/collector"

// CollectorServer receives transaction log lines over TCP — the ingestion
// point of the continuous-authentication deployment.
type CollectorServer = collector.Server

// CollectorClient streams transactions to a CollectorServer.
type CollectorClient = collector.Client

// CollectorBatchConfig tunes batched ingestion (batch size, flush
// interval); the zero value selects the defaults.
type CollectorBatchConfig = collector.BatchConfig

// ListenCollector starts a TCP log collector on addr; handler receives
// every parsed transaction (from the server's single ingest goroutine).
func ListenCollector(addr string, handler func(Transaction)) (*CollectorServer, error) {
	return collector.Listen(addr, collector.Handler(handler))
}

// ListenCollectorBatch starts a TCP log collector that delivers parsed
// transactions in batches — pair it with Monitor.FeedBatch so each shard
// lock is taken once per batch. The batch slice is reused after the
// handler returns.
func ListenCollectorBatch(addr string, handler func([]Transaction), cfg CollectorBatchConfig) (*CollectorServer, error) {
	return collector.ListenBatch(addr, collector.BatchHandler(handler), cfg)
}

// DialCollector connects a log-producing client to a collector.
func DialCollector(addr string) (*CollectorClient, error) {
	return collector.Dial(addr)
}

// DialCollectorBinary connects a client that sends length-prefixed binary
// transaction records instead of log lines — the allocation-free sender
// for high-volume proxies (requires a binary-capable collector).
func DialCollectorBinary(addr string) (*CollectorClient, error) {
	return collector.DialBinary(addr)
}
